module Ir = Csspgo_ir
module Wire = Csspgo_support.Wire
module PP = Probe_profile
module CP = Ctx_profile
module LP = Line_profile

let magic = "CSPB"
let version = 1
let tag_line = 1
let tag_probe = 2
let tag_ctx = 3

(* ------------------------------------------------------------------ *)
(* Encoders. Entry order matches Text_io's writers (sorted), so the
   blob is canonical: equal profiles encode to equal bytes.            *)

let sorted_probes (fe : PP.fentry) =
  Hashtbl.fold (fun id c acc -> (id, c) :: acc) fe.PP.fe_probes [] |> List.sort compare

let sorted_calls (fe : PP.fentry) =
  Hashtbl.fold
    (fun site tbl acc ->
      Hashtbl.fold (fun callee c acc -> (site, callee, c) :: acc) tbl acc)
    fe.PP.fe_calls []
  |> List.sort compare

let enc_fentry e (fe : PP.fentry) =
  let probes = sorted_probes fe in
  Wire.Enc.varint e (List.length probes);
  List.iter
    (fun (id, c) ->
      Wire.Enc.varint e id;
      Wire.Enc.varint64 e c)
    probes;
  let calls = sorted_calls fe in
  Wire.Enc.varint e (List.length calls);
  List.iter
    (fun (site, callee, c) ->
      Wire.Enc.varint e site;
      Wire.Enc.varint64 e callee;
      Wire.Enc.varint64 e c)
    calls

let name_or_guid names guid =
  Option.value (Ir.Guid.Tbl.find_opt names guid) ~default:(Printf.sprintf "%Lx" guid)

let enc_probe (t : PP.t) =
  let e = Wire.Enc.create () in
  let guids =
    Ir.Guid.Tbl.fold (fun g _ acc -> g :: acc) t.PP.funcs []
    |> List.sort Ir.Guid.compare
  in
  Wire.Enc.varint e (List.length guids);
  List.iter
    (fun guid ->
      let fe = Ir.Guid.Tbl.find t.PP.funcs guid in
      Wire.Enc.varint64 e guid;
      Wire.Enc.string e (name_or_guid t.PP.names guid);
      Wire.Enc.varint64 e fe.PP.fe_head;
      Wire.Enc.varint64 e fe.PP.fe_checksum;
      enc_fentry e fe)
    guids;
  Wire.Enc.contents e

let enc_line (t : LP.t) =
  let e = Wire.Enc.create () in
  let guids =
    Ir.Guid.Tbl.fold (fun g _ acc -> g :: acc) t.LP.funcs []
    |> List.sort Ir.Guid.compare
  in
  Wire.Enc.varint e (List.length guids);
  List.iter
    (fun guid ->
      let fe = Ir.Guid.Tbl.find t.LP.funcs guid in
      Wire.Enc.varint64 e guid;
      Wire.Enc.string e (name_or_guid t.LP.names guid);
      Wire.Enc.varint64 e fe.LP.fe_head;
      let lines =
        Hashtbl.fold (fun k c acc -> (k, c) :: acc) fe.LP.fe_lines []
        |> List.sort compare
      in
      Wire.Enc.varint e (List.length lines);
      List.iter
        (fun ((l, d), c) ->
          Wire.Enc.varint e l;
          Wire.Enc.varint e d;
          Wire.Enc.varint64 e c)
        lines;
      let calls =
        Hashtbl.fold
          (fun k tbl acc -> Hashtbl.fold (fun g c acc -> (k, g, c) :: acc) tbl acc)
          fe.LP.fe_calls []
        |> List.sort compare
      in
      Wire.Enc.varint e (List.length calls);
      List.iter
        (fun ((l, d), g, c) ->
          Wire.Enc.varint e l;
          Wire.Enc.varint e d;
          Wire.Enc.varint64 e g;
          Wire.Enc.varint64 e c)
        calls)
    guids;
  Wire.Enc.contents e

(* Nodes are written in [iter_nodes] pre-order (parents strictly before
   children), so each node's context collapses to the emission index of
   its parent plus the connecting callsite probe: 0 marks a root, k > 0
   refers to node k-1. Decoding is O(1) per node, and deep contexts don't
   repeat their prefix frames on the wire. *)
let enc_ctx (t : CP.t) =
  let e = Wire.Enc.create () in
  let nodes = ref [] in
  CP.iter_nodes t (fun ctx node -> nodes := (ctx, node) :: !nodes);
  let nodes = List.rev !nodes in
  Wire.Enc.varint e (List.length nodes);
  let index : (CP.frame list, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i (ctx, (node : CP.node)) ->
      Hashtbl.replace index ctx i;
      (match List.rev ctx with
      | [] ->
          Wire.Enc.varint e 0;
          Wire.Enc.varint e 0
      | (_, site) :: rev_parent ->
          Wire.Enc.varint e (Hashtbl.find index (List.rev rev_parent) + 1);
          Wire.Enc.varint e site);
      Wire.Enc.varint64 e node.CP.n_func;
      Wire.Enc.string e node.CP.n_name;
      Wire.Enc.byte e (if node.CP.n_inlined then 1 else 0);
      Wire.Enc.varint64 e node.CP.n_prof.PP.fe_head;
      Wire.Enc.varint64 e node.CP.n_prof.PP.fe_checksum;
      enc_fentry e node.CP.n_prof)
    nodes;
  Wire.Enc.contents e

let encode (p : Text_io.profile) =
  let tag, payload =
    match p with
    | Text_io.Line_prof t -> (tag_line, enc_line t)
    | Text_io.Probe_prof t -> (tag_probe, enc_probe t)
    | Text_io.Ctx_prof t -> (tag_ctx, enc_ctx t)
  in
  Wire.frame ~magic ~version [ (tag, payload) ]

(* ------------------------------------------------------------------ *)
(* Decoders. Profiles are rebuilt through the same accumulation API the
   text readers use (add_probe recomputes totals, set_line_max keeps the
   max), so re-serialized canonical text is byte-identical.            *)

let fail what = raise (Wire.Error (Wire.Malformed what))

let counted d f =
  let n = Wire.Dec.varint d in
  if n < 0 then fail "negative entry count";
  for _ = 1 to n do
    f ()
  done

let dec_fentry d (fe : PP.fentry) =
  counted d (fun () ->
      let id = Wire.Dec.varint d in
      let c = Wire.Dec.varint64 d in
      PP.add_probe fe id c);
  counted d (fun () ->
      let site = Wire.Dec.varint d in
      let callee = Wire.Dec.varint64 d in
      let c = Wire.Dec.varint64 d in
      PP.add_call fe site callee c)

let dec_probe payload =
  let d = Wire.Dec.of_string payload in
  let t = PP.create () in
  counted d (fun () ->
      let guid = Wire.Dec.varint64 d in
      let name = Wire.Dec.string d in
      let fe = PP.get_or_add t guid ~name in
      fe.PP.fe_head <- Wire.Dec.varint64 d;
      fe.PP.fe_checksum <- Wire.Dec.varint64 d;
      dec_fentry d fe);
  if not (Wire.Dec.at_end d) then fail "trailing bytes in probe section";
  Text_io.Probe_prof t

let dec_line payload =
  let d = Wire.Dec.of_string payload in
  let t = LP.create () in
  counted d (fun () ->
      let guid = Wire.Dec.varint64 d in
      let name = Wire.Dec.string d in
      let fe = LP.get_or_add t guid ~name in
      fe.LP.fe_head <- Wire.Dec.varint64 d;
      counted d (fun () ->
          let l = Wire.Dec.varint d in
          let dc = Wire.Dec.varint d in
          let c = Wire.Dec.varint64 d in
          LP.set_line_max fe (l, dc) c);
      counted d (fun () ->
          let l = Wire.Dec.varint d in
          let dc = Wire.Dec.varint d in
          let g = Wire.Dec.varint64 d in
          let c = Wire.Dec.varint64 d in
          LP.add_call fe (l, dc) g c));
  if not (Wire.Dec.at_end d) then fail "trailing bytes in line section";
  Text_io.Line_prof t

let dec_ctx payload =
  let d = Wire.Dec.of_string payload in
  let t = CP.create () in
  let n = Wire.Dec.varint d in
  if n < 0 then fail "negative entry count";
  let nodes = Array.make (max n 1) None in
  for i = 0 to n - 1 do
    let pref = Wire.Dec.varint d in
    let site = Wire.Dec.varint d in
    if pref < 0 || pref > i then fail "context parent reference out of order";
    if pref = 0 && site <> 0 then fail "nonzero callsite on a root context";
    let guid = Wire.Dec.varint64 d in
    let name = Wire.Dec.string d in
    let inlined = Wire.Dec.byte d <> 0 in
    let head = Wire.Dec.varint64 d in
    let checksum = Wire.Dec.varint64 d in
    let parent = if pref = 0 then None else nodes.(pref - 1) in
    let node = CP.attach t ~parent ~site guid ~name in
    node.CP.n_name <- name;
    if inlined then node.CP.n_inlined <- true;
    node.CP.n_prof.PP.fe_head <- head;
    node.CP.n_prof.PP.fe_checksum <- checksum;
    dec_fentry d node.CP.n_prof;
    nodes.(i) <- Some node
  done;
  if not (Wire.Dec.at_end d) then fail "trailing bytes in ctx section";
  Text_io.Ctx_prof t

let decode s =
  match Wire.unframe ~magic ~max_version:version s with
  | Error e -> Error e
  | Ok (_version, sections) -> (
      try
        match sections with
        | [ (tag, payload) ] when tag = tag_line -> Ok (dec_line payload)
        | [ (tag, payload) ] when tag = tag_probe -> Ok (dec_probe payload)
        | [ (tag, payload) ] when tag = tag_ctx -> Ok (dec_ctx payload)
        | [ (tag, _) ] ->
            Error (Wire.Malformed (Printf.sprintf "unknown section tag %d" tag))
        | _ ->
            Error
              (Wire.Malformed
                 (Printf.sprintf "expected exactly one profile section, got %d"
                    (List.length sections)))
      with Wire.Error e -> Error e)

let is_binary s = Wire.sniff ~magic s
