(** Text serialization for profiles, in the spirit of LLVM's text sample
    profiles — human-inspectable, diffable, and stable across versions.

    Formats (one record per line, [#] comments allowed):

    Probe profiles:
    {v
    function <name> guid=<hex> total=<n> head=<n> checksum=<hex>
     probe <id> <count>
     call <site-id> <callee-guid-hex> <count>
    v}

    Context profiles add a context header per node, outermost frame first:
    {v
    context <name> guid=<hex> [inlined]
     frame <func-guid-hex> <site-id>
     ... probe/call records ...
    v}

    Line profiles:
    {v
    function <name> guid=<hex> total=<n> head=<n>
     line <line>.<disc> <count>
     callline <line>.<disc> <callee-guid-hex> <count>
    v} *)

exception Parse_error of string * int  (** message, line number *)

(** {1 The unified interface}

    One first-class reader/writer pair covers all three profile kinds, so
    consumers that serialize "whatever profile this variant produced" — the
    orchestrator's artifact cache, the fuzz oracles, dump tooling — need no
    per-kind special cases. *)

type kind = Line | Probe | Ctx

type profile =
  | Line_prof of Line_profile.t
  | Probe_prof of Probe_profile.t
  | Ctx_prof of Ctx_profile.t

val kind_name : kind -> string
(** ["line"], ["probe"], ["ctx"] — stable, used in cache keys. *)

val kind_of : profile -> kind

val write : Format.formatter -> profile -> unit

val to_string : profile -> string
(** Canonical text: sorted, comment-free, byte-stable for equal profiles. *)

val read : kind -> string -> profile
(** Parse text known to be of [kind]. Raises {!Parse_error}. *)

val detect_kind : string -> kind option
(** Sniff the kind from the first record: [context] headers mean [Ctx],
    [function] headers with a [checksum=] field mean [Probe], without one
    [Line]. [None] when the text holds no records at all. *)

val of_string : ?kind:kind -> string -> profile
(** [read] with sniffing when [kind] is omitted; empty input raises
    {!Parse_error}. *)

val total_samples : profile -> int64
