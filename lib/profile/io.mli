(** The profile I/O facade: one entry point for "read whatever profile this
    is" and "write a profile in that form", dispatching between the
    canonical text form ({!Text_io}) and the digest-framed binary form
    ({!Binary_io}) — by sniffing on read, by flag on write.

    Consumers that move whole profiles around (the tool, the fleet
    collector, bench, fuzz corpora) go through this module; {!Text_io} and
    {!Binary_io} stay public for callers that need one specific form (the
    plan cache's canonical text, golden fixtures, codec tests). *)

type form = Text | Binary

val form_name : form -> string
(** ["text"] / ["binary"] — stable, used in CLI flags and reports. *)

val sniff : string -> form
(** [Binary] iff the data starts with the {!Binary_io.magic} blob prefix;
    text profiles never do. *)

val read : string -> (Text_io.profile, string) result
(** Sniff and decode: binary blobs via {!Binary_io.decode}, anything else
    via {!Text_io.of_string} (kind-sniffing text parse). Either failure
    mode becomes a human-readable message. *)

val read_exn : string -> Text_io.profile
(** {!read}, raising [Failure] with the message. *)

val write : form:form -> Text_io.profile -> string
(** Serialize: canonical {!Text_io.to_string} text or {!Binary_io.encode}
    bytes. Both round-trip through {!read} to a profile with identical
    canonical text. *)
