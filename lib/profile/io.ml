module Wire = Csspgo_support.Wire

type form = Text | Binary

let form_name = function Text -> "text" | Binary -> "binary"
let sniff s = if Binary_io.is_binary s then Binary else Text

let read s =
  match sniff s with
  | Binary -> (
      match Binary_io.decode s with
      | Ok p -> Ok p
      | Error e -> Error (Wire.error_to_string e))
  | Text -> (
      match Text_io.of_string s with
      | p -> Ok p
      | exception Text_io.Parse_error (msg, line) ->
          Error (Printf.sprintf "text parse error at line %d: %s" line msg))

let read_exn s = match read s with Ok p -> p | Error e -> failwith e

let write ~form p =
  match form with Text -> Text_io.to_string p | Binary -> Binary_io.encode p
