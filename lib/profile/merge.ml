module Ir = Csspgo_ir
module PP = Probe_profile
module LP = Line_profile
module CP = Ctx_profile

let check_weight w =
  if Int64.compare w 0L < 0 then invalid_arg "Merge: negative weight"

let scale w c = Int64.mul w c

(* Names merge by minimum non-empty string — a commutative, associative,
   idempotent resolution, so merge order can never change the serialized
   name. Entries absent from the source stay absent (the writers' hex-guid
   default then reproduces the source bytes). *)
let better_name cur cand =
  if String.equal cand "" then cur
  else if String.equal cur "" then cand
  else if String.compare cand cur < 0 then cand
  else cur

let resolve_name names guid cand =
  if not (String.equal cand "") then
    match Ir.Guid.Tbl.find_opt names guid with
    | None -> Ir.Guid.Tbl.replace names guid cand
    | Some cur ->
        let b = better_name cur cand in
        if not (String.equal b cur) then Ir.Guid.Tbl.replace names guid b

(* Checksums merge by unsigned max: 0 (absent) never beats a real checksum,
   and max is the commutative/associative tie-break when two non-zero
   checksums meet (possible only for unmatched cross-version merges —
   stale matching stamps the target checksum before profiles get here). *)
let merge_checksum ~into:d s =
  if Int64.unsigned_compare s d > 0 then s else d

(* Weighted accumulation of a probe-shaped fentry (shared with ctx nodes).
   [add_probe] maintains [fe_total], so totals stay the sum of entries. *)
let merge_fentry ~into:(d : PP.fentry) ~weight (s : PP.fentry) =
  Hashtbl.iter (fun id c -> PP.add_probe d id (scale weight c)) s.PP.fe_probes;
  Hashtbl.iter
    (fun site tbl ->
      Hashtbl.iter (fun callee c -> PP.add_call d site callee (scale weight c)) tbl)
    s.PP.fe_calls;
  d.PP.fe_head <- Int64.add d.PP.fe_head (scale weight s.PP.fe_head);
  d.PP.fe_checksum <- merge_checksum ~into:d.PP.fe_checksum s.PP.fe_checksum

let probe_fentry_of (t : PP.t) guid =
  match Ir.Guid.Tbl.find_opt t.PP.funcs guid with
  | Some fe -> fe
  | None ->
      let fe =
        {
          PP.fe_total = 0L;
          fe_head = 0L;
          fe_probes = Hashtbl.create 16;
          fe_calls = Hashtbl.create 4;
          fe_checksum = 0L;
        }
      in
      Ir.Guid.Tbl.replace t.PP.funcs guid fe;
      fe

let probe ~into ~weight (src : PP.t) =
  check_weight weight;
  if not (Int64.equal weight 0L) then
    Ir.Guid.Tbl.iter
      (fun guid fe ->
        let d = probe_fentry_of into guid in
        (match Ir.Guid.Tbl.find_opt src.PP.names guid with
        | Some n -> resolve_name into.PP.names guid n
        | None -> ());
        merge_fentry ~into:d ~weight fe)
      src.PP.funcs

let line_fentry_of (t : LP.t) guid =
  match Ir.Guid.Tbl.find_opt t.LP.funcs guid with
  | Some fe -> fe
  | None ->
      let fe =
        {
          LP.fe_total = 0L;
          fe_head = 0L;
          fe_lines = Hashtbl.create 16;
          fe_calls = Hashtbl.create 4;
        }
      in
      Ir.Guid.Tbl.replace t.LP.funcs guid fe;
      fe

let line ~into ~weight (src : LP.t) =
  check_weight weight;
  if not (Int64.equal weight 0L) then
    Ir.Guid.Tbl.iter
      (fun guid fe ->
        let d = line_fentry_of into guid in
        (match Ir.Guid.Tbl.find_opt src.LP.names guid with
        | Some n -> resolve_name into.LP.names guid n
        | None -> ());
        Hashtbl.iter (fun key c -> LP.add_line d key (scale weight c)) fe.LP.fe_lines;
        Hashtbl.iter
          (fun key tbl ->
            Hashtbl.iter (fun callee c -> LP.add_call d key callee (scale weight c)) tbl)
          fe.LP.fe_calls;
        d.LP.fe_head <- Int64.add d.LP.fe_head (scale weight fe.LP.fe_head))
      src.LP.funcs

(* Trie unification: walk the source trie and find-or-create the same
   (callsite, callee) chain in the destination via [Ctx_profile.attach] —
   the O(1) step primitive — accumulating each node's fentry on the way. *)
let rec merge_ctx_node t ~dst ~weight (s : CP.node) =
  merge_fentry ~into:dst.CP.n_prof ~weight s.CP.n_prof;
  if s.CP.n_inlined then dst.CP.n_inlined <- true;
  dst.CP.n_name <- better_name dst.CP.n_name s.CP.n_name;
  Hashtbl.iter
    (fun ((site, guid) : CP.frame_key) child ->
      let c = CP.attach t ~parent:(Some dst) ~site guid ~name:child.CP.n_name in
      merge_ctx_node t ~dst:c ~weight child)
    s.CP.n_children

let ctx ~into ~weight (src : CP.t) =
  check_weight weight;
  if not (Int64.equal weight 0L) then
    Ir.Guid.Tbl.iter
      (fun guid root ->
        let dst = CP.attach into ~parent:None ~site:0 guid ~name:root.CP.n_name in
        merge_ctx_node into ~dst ~weight root)
      src.CP.roots

let into ~into:dst ~weight src =
  match (dst, src) with
  | Text_io.Probe_prof d, Text_io.Probe_prof s -> probe ~into:d ~weight s
  | Text_io.Line_prof d, Text_io.Line_prof s -> line ~into:d ~weight s
  | Text_io.Ctx_prof d, Text_io.Ctx_prof s -> ctx ~into:d ~weight s
  | _ ->
      invalid_arg
        (Printf.sprintf "Merge.into: cannot merge a %s profile into a %s profile"
           (Text_io.kind_name (Text_io.kind_of src))
           (Text_io.kind_name (Text_io.kind_of dst)))

let empty = function
  | Text_io.Line -> Text_io.Line_prof (LP.create ())
  | Text_io.Probe -> Text_io.Probe_prof (PP.create ())
  | Text_io.Ctx -> Text_io.Ctx_prof (CP.create ())

let weighted ~kind srcs =
  let acc = empty kind in
  List.iter (fun (weight, src) -> into ~into:acc ~weight src) srcs;
  acc

let copy p = weighted ~kind:(Text_io.kind_of p) [ (1L, p) ]

let flatten_ctx trie =
  let flat = PP.create () in
  CP.iter_nodes trie (fun _ node ->
      let fe = probe_fentry_of flat node.CP.n_func in
      resolve_name flat.PP.names node.CP.n_func node.CP.n_name;
      merge_fentry ~into:fe ~weight:1L node.CP.n_prof);
  flat
