module Ir = Csspgo_ir

type frame = Ir.Guid.t * int

type node = {
  n_func : Ir.Guid.t;
  mutable n_name : string;
  mutable n_inlined : bool;
  n_prof : Probe_profile.fentry;
  n_children : (frame_key, node) Hashtbl.t;
}

and frame_key = int * Ir.Guid.t

type t = {
  roots : node Ir.Guid.Tbl.t;
}

let fresh_fentry () =
  {
    Probe_profile.fe_total = 0L;
    fe_head = 0L;
    fe_probes = Hashtbl.create 16;
    fe_calls = Hashtbl.create 4;
    fe_checksum = 0L;
  }

let mk_node guid name =
  {
    n_func = guid;
    n_name = name;
    n_inlined = false;
    n_prof = fresh_fentry ();
    n_children = Hashtbl.create 4;
  }

let create () = { roots = Ir.Guid.Tbl.create 64 }

let base t guid ~name =
  match Ir.Guid.Tbl.find_opt t.roots guid with
  | Some n -> n
  | None ->
      let n = mk_node guid name in
      Ir.Guid.Tbl.replace t.roots guid n;
      n

let attach t ~parent ~site guid ~name =
  match parent with
  | None -> base t guid ~name
  | Some p -> (
      let key = (site, guid) in
      match Hashtbl.find_opt p.n_children key with
      | Some c -> c
      | None ->
          let c = mk_node guid name in
          Hashtbl.replace p.n_children key c;
          c)

let node_at t ~path =
  match path with
  | [] -> None
  | ((root_guid, _), _, _) :: _ ->
      let root =
        base t root_guid ~name:(Format.asprintf "%a" Ir.Guid.pp root_guid)
      in
      let cur = ref root in
      List.iter
        (fun (((_, site) : frame), child_guid, child_name) ->
          let key = (site, child_guid) in
          let child =
            match Hashtbl.find_opt !cur.n_children key with
            | Some c -> c
            | None ->
                let c = mk_node child_guid child_name in
                Hashtbl.replace !cur.n_children key c;
                c
          in
          cur := child)
        path;
      Some !cur

let iter_nodes t f =
  let rec go ctx node =
    f (List.rev ctx) node;
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) node.n_children []
    |> List.sort (fun ((s1, g1), _) ((s2, g2), _) ->
           let c = compare s1 s2 in
           if c <> 0 then c else Ir.Guid.compare g1 g2)
    |> List.iter (fun ((site, _), child) -> go ((node.n_func, site) :: ctx) child)
  in
  Ir.Guid.Tbl.fold (fun g n acc -> (g, n) :: acc) t.roots []
  |> List.sort (fun (g1, _) (g2, _) -> Ir.Guid.compare g1 g2)
  |> List.iter (fun (_, root) -> go [] root)

let find_node t ~leaf pred =
  let found = ref None in
  iter_nodes t (fun ctx node ->
      if !found = None && Ir.Guid.equal node.n_func leaf && pred ctx then found := Some node);
  !found

let merge_fentry ~(into : Probe_profile.fentry) (src : Probe_profile.fentry) =
  Hashtbl.iter (fun id c -> Probe_profile.add_probe into id c) src.Probe_profile.fe_probes;
  Hashtbl.iter
    (fun site tbl ->
      Hashtbl.iter (fun callee c -> Probe_profile.add_call into site callee c) tbl)
    src.Probe_profile.fe_calls;
  into.Probe_profile.fe_head <- Int64.add into.Probe_profile.fe_head src.Probe_profile.fe_head;
  if Int64.equal into.Probe_profile.fe_checksum 0L then
    into.Probe_profile.fe_checksum <- src.Probe_profile.fe_checksum

(* Merge [src] into [dst] recursively (same function). *)
let rec merge_node ~(dst : node) (src : node) =
  merge_fentry ~into:dst.n_prof src.n_prof;
  Hashtbl.iter
    (fun key child ->
      match Hashtbl.find_opt dst.n_children key with
      | Some existing -> merge_node ~dst:existing child
      | None -> Hashtbl.replace dst.n_children key child)
    src.n_children;
  (* Detach the source subtree so a second promotion of the same node (e.g.
     from a stale traversal snapshot) cannot double-count. *)
  Hashtbl.reset src.n_children;
  src.n_prof.Probe_profile.fe_total <- 0L;
  src.n_prof.Probe_profile.fe_head <- 0L;
  Hashtbl.reset src.n_prof.Probe_profile.fe_probes;
  Hashtbl.reset src.n_prof.Probe_profile.fe_calls

let promote_to_base t ~parent ~key =
  match Hashtbl.find_opt parent.n_children key with
  | None -> ()
  | Some child ->
      Hashtbl.remove parent.n_children key;
      let b = base t child.n_func ~name:child.n_name in
      b.n_name <- child.n_name;
      merge_node ~dst:b child

let subtree_total node =
  let rec go n =
    Hashtbl.fold (fun _ c acc -> Int64.add acc (go c)) n.n_children n.n_prof.Probe_profile.fe_total
  in
  go node

let trim_cold t ~threshold =
  let removed = ref 0 in
  let rec sweep node =
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) node.n_children [] in
    List.iter
      (fun key ->
        match Hashtbl.find_opt node.n_children key with
        | None -> ()
        | Some child ->
            if Int64.compare (subtree_total child) threshold < 0 then begin
              promote_to_base t ~parent:node ~key;
              incr removed
            end
            else sweep child)
      (List.sort compare keys)
  in
  (* Promotion re-roots subtrees under other bases (possibly creating new
     roots mid-iteration), so sweep over root snapshots until a fixpoint. *)
  let continue_ = ref true in
  while !continue_ do
    let before = !removed in
    let roots = Ir.Guid.Tbl.fold (fun g _ acc -> g :: acc) t.roots [] in
    List.iter
      (fun g ->
        match Ir.Guid.Tbl.find_opt t.roots g with
        | Some root -> sweep root
        | None -> ())
      (List.sort Ir.Guid.compare roots);
    continue_ := !removed > before
  done;
  !removed

let n_nodes t =
  let n = ref 0 in
  iter_nodes t (fun _ _ -> incr n);
  !n

let size_bytes t =
  let bytes = ref 0 in
  iter_nodes t (fun ctx node ->
      (* context string + per-probe entries + per-call-target entries *)
      bytes := !bytes + 24 + (12 * List.length ctx);
      bytes := !bytes + (10 * Hashtbl.length node.n_prof.Probe_profile.fe_probes);
      Hashtbl.iter
        (fun _ tbl -> bytes := !bytes + (18 * Hashtbl.length tbl))
        node.n_prof.Probe_profile.fe_calls);
  !bytes

let total_samples t =
  let total = ref 0L in
  iter_nodes t (fun _ node -> total := Int64.add !total node.n_prof.Probe_profile.fe_total);
  !total

let pp fmt t =
  iter_nodes t (fun ctx node ->
      List.iter (fun (g, s) -> Format.fprintf fmt "%a:%d @ " Ir.Guid.pp g s) ctx;
      Format.fprintf fmt "%s total=%Ld head=%Ld%s@." node.n_name
        node.n_prof.Probe_profile.fe_total node.n_prof.Probe_profile.fe_head
        (if node.n_inlined then " [inlined]" else ""))
