(** Context-sensitive profile: a trie of function profiles keyed by calling
    context, as produced by CSSPGO's synchronized LBR + stack profiler.

    A context is a chain [(f0, s0) ; (f1, s1) ; ...] of (function,
    callsite-probe-id) pairs from the outermost caller, naming one inline
    instance of the leaf function — e.g. [main:3 @ foo:2 @ bar] in LLVM's
    notation. Root nodes hold the *base* (context-merged) profiles.

    The trie supports the operations the §III.B pipeline needs:
    - accumulation of probe/call counts at a context,
    - cold-context trimming (merge into base) for profile-size control,
    - context promotion (a not-inlined context's subtree re-roots at the
      leaf function's base profile, used by the pre-inliner),
    - the pre-inliner's inline marks, persisted per context node. *)

type frame = Csspgo_ir.Guid.t * int
(** (function, callsite probe id in that function) *)

type node = {
  n_func : Csspgo_ir.Guid.t;
  mutable n_name : string;
  mutable n_inlined : bool;  (** pre-inliner decision for this context *)
  n_prof : Probe_profile.fentry;
  n_children : (frame_key, node) Hashtbl.t;
}

and frame_key = int * Csspgo_ir.Guid.t
(** (callsite probe id in the parent, callee guid) *)

type t = {
  roots : node Csspgo_ir.Guid.Tbl.t;
}

val create : unit -> t

val base : t -> Csspgo_ir.Guid.t -> name:string -> node
(** Base (context-less) node for a function, created on demand. *)

val attach :
  t -> parent:node option -> site:int -> Csspgo_ir.Guid.t -> name:string -> node
(** Find-or-create one trie step: the root for the guid when [parent] is
    [None] ([site] is ignored), else [parent]'s child at callsite probe
    [site]. The O(1) primitive the binary profile reader uses; [node_at]
    walks a whole path through the same tables. *)

val node_at : t -> path:(frame * Csspgo_ir.Guid.t * string) list -> node option
(** Resolve a context: the path starts at a root function and each element
    is ((parent_func, callsite_probe), child_guid, child_name); [None] if
    the path is empty. Creates missing nodes. The first element's
    [parent_func] names the root. *)

val find_node : t -> leaf:Csspgo_ir.Guid.t -> (frame list -> bool) -> node option
(** First node for [leaf] whose full context satisfies the predicate. *)

val iter_nodes : t -> (frame list -> node -> unit) -> unit
(** Depth-first over all nodes; the frame list is the node's full context
    (outermost first, excluding the node itself). *)

val merge_fentry : into:Probe_profile.fentry -> Probe_profile.fentry -> unit

val promote_to_base : t -> parent:node -> key:frame_key -> unit
(** Detach the child at [key] from [parent], merge its profile into the
    leaf function's base, and re-root its children under that base
    (recursively merging). Implements MoveContextProfileToBaseProfile. *)

val trim_cold : t -> threshold:int64 -> int
(** Promote every context node (depth >= 1) whose subtree total is below
    [threshold] into the base profile. Returns the number of contexts
    removed. The §III.B scalability mitigation. *)

val n_nodes : t -> int
val size_bytes : t -> int
(** Rough serialized-size estimate, for the scalability experiment. *)

val total_samples : t -> int64
val pp : Format.formatter -> t -> unit
