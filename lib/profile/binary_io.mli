(** Compact binary serialization for profiles — the wire format the paper's
    continuous-profiling loop would ship, next to {!Text_io}'s golden/debug
    text. One digest-framed {!Csspgo_support.Wire} envelope per blob, with
    one section per profile shape:

    {v
    "CSPB" | version | nsections | section(tag, len, payload, fnv64)
    tag 1 = line profile, 2 = probe profile, 3 = ctx profile
    v}

    Payloads are varint-packed (LEB128) with entries in the same canonical
    order {!Text_io}'s writers use, so [encode] is deterministic and
    [decode] rebuilds through the same accumulation API as the text
    readers: [Text_io.to_string (decode (encode p))] is byte-identical to
    [Text_io.to_string p].

    Decoding validates the envelope before touching any payload; bad input
    yields a typed [Error _], never an exception. Version-1 blobs are a
    compatibility contract: future format bumps must keep decoding them
    (the golden [.bprof] fixtures under test/ pin this). *)

val magic : string
(** ["CSPB"], the 4-byte blob prefix. *)

val version : int
(** Current write-side format version (1). *)

val encode : Text_io.profile -> string

val decode : string -> (Text_io.profile, Csspgo_support.Wire.error) result

val is_binary : string -> bool
(** Format sniffing: does the data start with {!magic}? Text profiles never
    do ([#], [function] or [context] lead). Auto-detecting reads live in
    {!Io}, the form-dispatching facade. *)
