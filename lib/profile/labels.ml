module Label_set = Csspgo_support.Label_set

type slice = {
  sl_label : Label_set.t;
  sl_weight : int64;
  sl_profile : Text_io.profile;
}

type t = { kind : Text_io.kind; slices : slice list }

let make ~kind slices =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Text_io.kind_of s.sl_profile <> kind then
        invalid_arg "Labels.make: slice kind mismatch";
      if Int64.compare s.sl_weight 0L < 0 then
        invalid_arg "Labels.make: negative slice weight";
      let key = Label_set.canonical s.sl_label in
      if Hashtbl.mem seen key then invalid_arg "Labels.make: duplicate label";
      Hashtbl.replace seen key ())
    slices;
  { kind; slices }

let kind t = t.kind
let slices t = t.slices
let labels t = List.map (fun s -> s.sl_label) t.slices
let n_slices t = List.length t.slices
let total_weight t = List.fold_left (fun a s -> Int64.add a s.sl_weight) 0L t.slices

let find t label =
  List.find_opt (fun s -> Label_set.equal s.sl_label label) t.slices

let blend t =
  Merge.weighted ~kind:t.kind (List.map (fun s -> (1L, s.sl_profile)) t.slices)

let reblend t weights =
  Merge.weighted ~kind:t.kind
    (List.map
       (fun (w, label) ->
         if Int64.compare w 0L < 0 then invalid_arg "Labels.reblend: negative weight";
         match find t label with
         | Some s -> (w, s.sl_profile)
         | None ->
             invalid_arg
               (Printf.sprintf "Labels.reblend: unknown label %s"
                  (Label_set.to_string label)))
       weights)

let project t ~keys =
  (* Group by projected label in first-appearance order; colliding slices
     merge at weight 1 (each already carries its observed mass) and their
     weights add, so projecting never changes the total sample mass. *)
  let order = ref [] in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let label = Label_set.project s.sl_label ~keys in
      let key = Label_set.canonical label in
      match Hashtbl.find_opt groups key with
      | Some (w, p) ->
          Merge.into ~into:p ~weight:1L s.sl_profile;
          Hashtbl.replace groups key (Int64.add w s.sl_weight, p)
      | None ->
          order := (key, label) :: !order;
          let p = Merge.empty t.kind in
          Merge.into ~into:p ~weight:1L s.sl_profile;
          Hashtbl.replace groups key (s.sl_weight, p))
    t.slices;
  {
    kind = t.kind;
    slices =
      List.rev_map
        (fun (key, label) ->
          let w, p = Hashtbl.find groups key in
          { sl_label = label; sl_weight = w; sl_profile = p })
        !order;
  }

(* --- text form ------------------------------------------------------- *)

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "labeledprofile %s %d\n" (Text_io.kind_name t.kind)
       (n_slices t));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "label %s weight=%Ld\n"
           (Label_set.to_string s.sl_label)
           s.sl_weight);
      Buffer.add_string buf (Text_io.to_string s.sl_profile))
    t.slices;
  Buffer.contents buf

let kind_of_name = function
  | "line" -> Some Text_io.Line
  | "probe" -> Some Text_io.Probe
  | "ctx" -> Some Text_io.Ctx
  | _ -> None

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt s '\n' with
  | None -> err "labeledprofile: missing header"
  | Some nl -> (
      let header = String.sub s 0 nl in
      let rest = String.sub s (nl + 1) (String.length s - nl - 1) in
      match String.split_on_char ' ' header with
      | [ "labeledprofile"; kname; n ] -> (
          match (kind_of_name kname, int_of_string_opt n) with
          | None, _ -> err "labeledprofile: unknown kind %S" kname
          | _, None -> err "labeledprofile: bad slice count %S" n
          | Some kind, Some n -> (
              (* Split the body at each "label " header line. *)
              let lines = String.split_on_char '\n' rest in
              let sections = ref [] in
              let cur = ref None in
              let flush () =
                match !cur with
                | Some (hdr, body) ->
                    sections :=
                      (hdr, String.concat "\n" (List.rev body)) :: !sections;
                    cur := None
                | None -> ()
              in
              let stray = ref false in
              List.iter
                (fun line ->
                  if String.length line >= 6 && String.equal (String.sub line 0 6) "label "
                  then begin
                    flush ();
                    cur := Some (String.sub line 6 (String.length line - 6), [])
                  end
                  else
                    match !cur with
                    | Some (hdr, body) -> cur := Some (hdr, line :: body)
                    | None -> if not (String.equal (String.trim line) "") then stray := true)
                lines;
              flush ();
              if !stray then err "labeledprofile: text before first label record"
              else
                let sections = List.rev !sections in
                if List.length sections <> n then
                  err "labeledprofile: header declares %d slices, found %d" n
                    (List.length sections)
                else
                  let parse (hdr, body) acc =
                    match acc with
                    | Error _ as e -> e
                    | Ok slices -> (
                        match String.split_on_char ' ' hdr with
                        | [ label_s; weight_s ]
                          when String.length weight_s > 7
                               && String.equal (String.sub weight_s 0 7) "weight=" -> (
                            let w_s =
                              String.sub weight_s 7 (String.length weight_s - 7)
                            in
                            match
                              (Label_set.of_string label_s, Int64.of_string_opt w_s)
                            with
                            | Error e, _ -> err "labeledprofile: %s" e
                            | _, None -> err "labeledprofile: bad weight %S" w_s
                            | Ok label, Some w when Int64.compare w 0L >= 0 -> (
                                try
                                  let p = Text_io.read kind body in
                                  Ok
                                    ({ sl_label = label; sl_weight = w; sl_profile = p }
                                    :: slices)
                                with Text_io.Parse_error (m, l) ->
                                  err "labeledprofile: slice %s: %s (line %d)" label_s
                                    m l)
                            | _ -> err "labeledprofile: negative weight %S" w_s)
                        | _ -> err "labeledprofile: bad label record %S" hdr)
                  in
                  match List.fold_right parse sections (Ok []) with
                  | Error _ as e -> e
                  | Ok slices -> (
                      try Ok (make ~kind slices)
                      with Invalid_argument m -> Error m)))
      | _ -> err "labeledprofile: bad header %S" header)
