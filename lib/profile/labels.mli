(** Label-sliced profiles: one profile per request
    {!Csspgo_support.Label_set} (tenant, endpoint, experiment arm), each
    slice carrying its observed sample weight. This is the post-hoc view a
    labeled sample log correlates into — the multi-tenant counterpart of a
    single blended profile.

    All slices of a bundle are of one {!Text_io.kind}, labels are
    distinct, and slice order is the deterministic first-appearance order
    of the source stream. Re-combination goes through {!Merge}, so the
    merge laws carry over: {!blend} of slices produced by partitioning one
    log reconstructs the blended profile byte-for-byte for the probe and
    context shapes (counts are additive over any whole-sample partition).
    The line shape takes a per-line {e max} across instructions during
    correlation, which is not additive at profile level — exact line
    re-blends must merge the slices' range aggregates and correlate once
    (see [Fleet.Build.correlate_labeled]); {!blend} on line slices is the
    merge-law combination of the slice profiles themselves. *)

type slice = {
  sl_label : Csspgo_support.Label_set.t;
  sl_weight : int64;  (** observed sample count of the slice *)
  sl_profile : Text_io.profile;
}

type t

val make : kind:Text_io.kind -> slice list -> t
(** Bundle slices, preserving order.
    @raise Invalid_argument on a kind mismatch, a duplicate label, or a
    negative weight. *)

val kind : t -> Text_io.kind
val slices : t -> slice list
val labels : t -> Csspgo_support.Label_set.t list
val n_slices : t -> int

val total_weight : t -> int64
(** Sum of slice weights — the blended profile's sample mass. *)

val find : t -> Csspgo_support.Label_set.t -> slice option

val blend : t -> Text_io.profile
(** Merge every slice at weight 1 into a fresh profile — each slice
    already carries exactly its observed sample mass, so weight 1 {e is}
    the observed-weight blend. Slice order cannot matter (merge is
    commutative). *)

val reblend : t -> (int64 * Csspgo_support.Label_set.t) list -> Text_io.profile
(** Blend with explicit per-label weights (a what-if mix): each listed
    label's slice is merged at the given weight; unlisted slices are
    dropped.
    @raise Invalid_argument on a negative weight or an unknown label. *)

val project : t -> keys:string list -> t
(** Re-key every slice by {!Csspgo_support.Label_set.project} onto [keys]
    and merge slices whose projections collide (weights add, profiles
    merge at weight 1) — e.g. collapse per-(tenant, endpoint) slices down
    to per-tenant. Result order is first appearance of each projected
    label. *)

(** {1 Text form}

    A [labeledprofile] header, then per slice a [label] record (display
    form and weight) followed by the slice's canonical {!Text_io} text:
    {v
    labeledprofile <kind> <nslices>
    label <k=v,...|-> weight=<n>
    <profile text...>
    v}
    Canonical and byte-stable for equal bundles, like {!Text_io}. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse the text form; [Error] carries a human-readable reason
    ({!Text_io.Parse_error}s are caught and rendered). *)
