module Ir = Csspgo_ir
module PP = Probe_profile
module CP = Ctx_profile
module LP = Line_profile

exception Parse_error of string * int

(* ------------------------------------------------------------------ *)
(* Writers. Deterministic: entries sorted by key.                      *)

let sorted_probes (fe : PP.fentry) =
  Hashtbl.fold (fun id c acc -> (id, c) :: acc) fe.PP.fe_probes [] |> List.sort compare

let sorted_calls (fe : PP.fentry) =
  Hashtbl.fold
    (fun site tbl acc ->
      Hashtbl.fold (fun callee c acc -> (site, callee, c) :: acc) tbl acc)
    fe.PP.fe_calls []
  |> List.sort compare

let write_fentry fmt (fe : PP.fentry) =
  List.iter (fun (id, c) -> Format.fprintf fmt " probe %d %Ld@." id c) (sorted_probes fe);
  List.iter
    (fun (site, callee, c) -> Format.fprintf fmt " call %d %Lx %Ld@." site callee c)
    (sorted_calls fe)

let write_probe fmt (t : PP.t) =
  let guids = Ir.Guid.Tbl.fold (fun g _ acc -> g :: acc) t.PP.funcs [] in
  List.iter
    (fun guid ->
      let fe = Ir.Guid.Tbl.find t.PP.funcs guid in
      let name =
        Option.value (Ir.Guid.Tbl.find_opt t.PP.names guid) ~default:(Printf.sprintf "%Lx" guid)
      in
      Format.fprintf fmt "function %s guid=%Lx total=%Ld head=%Ld checksum=%Lx@." name guid
        fe.PP.fe_total fe.PP.fe_head fe.PP.fe_checksum;
      write_fentry fmt fe)
    (List.sort Ir.Guid.compare guids)

let write_ctx fmt (t : CP.t) =
  CP.iter_nodes t (fun ctx node ->
      Format.fprintf fmt "context %s guid=%Lx%s@." node.CP.n_name node.CP.n_func
        (if node.CP.n_inlined then " inlined" else "");
      List.iter (fun (g, site) -> Format.fprintf fmt " frame %Lx %d@." g site) ctx;
      Format.fprintf fmt " head %Ld@." node.CP.n_prof.PP.fe_head;
      Format.fprintf fmt " checksum %Lx@." node.CP.n_prof.PP.fe_checksum;
      write_fentry fmt node.CP.n_prof)

let write_line fmt (t : LP.t) =
  let guids = Ir.Guid.Tbl.fold (fun g _ acc -> g :: acc) t.LP.funcs [] in
  List.iter
    (fun guid ->
      let fe = Ir.Guid.Tbl.find t.LP.funcs guid in
      let name =
        Option.value (Ir.Guid.Tbl.find_opt t.LP.names guid) ~default:(Printf.sprintf "%Lx" guid)
      in
      Format.fprintf fmt "function %s guid=%Lx total=%Ld head=%Ld@." name guid fe.LP.fe_total
        fe.LP.fe_head;
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) fe.LP.fe_lines []
      |> List.sort compare
      |> List.iter (fun ((l, d), c) -> Format.fprintf fmt " line %d.%d %Ld@." l d c);
      Hashtbl.fold
        (fun k tbl acc -> Hashtbl.fold (fun g c acc -> (k, g, c) :: acc) tbl acc)
        fe.LP.fe_calls []
      |> List.sort compare
      |> List.iter (fun ((l, d), g, c) ->
             Format.fprintf fmt " callline %d.%d %Lx %Ld@." l d g c))
    (List.sort Ir.Guid.compare guids)


(* ------------------------------------------------------------------ *)
(* Readers.                                                            *)

type line = { no : int; words : string list }

let tokenize_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (no, l) ->
         let l = match String.index_opt l '#' with Some i -> String.sub l 0 i | None -> l in
         let words =
           String.split_on_char ' ' l |> List.filter (fun w -> not (String.equal w ""))
         in
         if words = [] then None else Some { no; words })

let fail no fmt = Format.kasprintf (fun m -> raise (Parse_error (m, no))) fmt

let parse_kv no word key =
  match String.split_on_char '=' word with
  | [ k; v ] when String.equal k key -> v
  | _ -> fail no "expected %s=<value>, got %S" key word

let int64_of no s =
  match Int64.of_string_opt s with Some v -> v | None -> fail no "bad integer %S" s

let hex_of no s =
  match Int64.of_string_opt ("0x" ^ s) with Some v -> v | None -> fail no "bad hex %S" s

let int_of no s =
  match int_of_string_opt s with Some v -> v | None -> fail no "bad int %S" s

let read_probe_impl s =
  let t = PP.create () in
  let cur = ref None in
  List.iter
    (fun { no; words } ->
      match words with
      | [ "function"; name; g; total; head; checksum ] ->
          let guid = hex_of no (parse_kv no g "guid") in
          let fe = PP.get_or_add t guid ~name in
          ignore (parse_kv no total "total");
          fe.PP.fe_head <- int64_of no (parse_kv no head "head");
          fe.PP.fe_checksum <- hex_of no (parse_kv no checksum "checksum");
          cur := Some fe
      | [ "probe"; id; c ] -> (
          match !cur with
          | Some fe -> PP.add_probe fe (int_of no id) (int64_of no c)
          | None -> fail no "probe record outside function")
      | [ "call"; site; callee; c ] -> (
          match !cur with
          | Some fe -> PP.add_call fe (int_of no site) (hex_of no callee) (int64_of no c)
          | None -> fail no "call record outside function")
      | w :: _ -> fail no "unknown record %S" w
      | [] -> ())
    (tokenize_lines s);
  t

let read_ctx_impl s =
  let t = CP.create () in
  let cur = ref None in
  let pending_frames = ref [] in
  let pending_leaf = ref None in
  let resolve no =
    match !pending_leaf with
    | None -> fail no "record outside context"
    | Some (name, guid, inlined) ->
        let node =
          match List.rev !pending_frames with
          | [] -> Some (CP.base t guid ~name)
          | frames ->
              let rec pairs = function
                | [ (g, site) ] -> [ ((g, site), guid, name) ]
                | (g, site) :: ((g2, _) :: _ as rest) ->
                    ((g, site), g2, Printf.sprintf "%Lx" g2) :: pairs rest
                | [] -> []
              in
              CP.node_at t ~path:(pairs frames)
        in
        (match node with
        | Some n ->
            n.CP.n_name <- name;
            if inlined then n.CP.n_inlined <- true;
            cur := Some n
        | None -> fail no "unresolvable context");
        pending_leaf := None;
        pending_frames := []
  in
  let node no =
    if !pending_leaf <> None then resolve no;
    match !cur with Some n -> n | None -> fail no "record outside context"
  in
  List.iter
    (fun { no; words } ->
      match words with
      | "context" :: name :: g :: rest ->
          if !pending_leaf <> None then resolve no;
          cur := None;
          let guid = hex_of no (parse_kv no g "guid") in
          pending_leaf := Some (name, guid, List.mem "inlined" rest)
      | [ "frame"; g; site ] ->
          if !pending_leaf = None then fail no "frame outside context header";
          pending_frames := (hex_of no g, int_of no site) :: !pending_frames
      | [ "head"; c ] ->
          let n = node no in
          n.CP.n_prof.PP.fe_head <- int64_of no c
      | [ "checksum"; c ] ->
          let n = node no in
          n.CP.n_prof.PP.fe_checksum <- hex_of no c
      | [ "probe"; id; c ] -> PP.add_probe (node no).CP.n_prof (int_of no id) (int64_of no c)
      | [ "call"; site; callee; c ] ->
          PP.add_call (node no).CP.n_prof (int_of no site) (hex_of no callee) (int64_of no c)
      | w :: _ -> fail no "unknown record %S" w
      | [] -> ())
    (tokenize_lines s);
  if !pending_leaf <> None then resolve 0;
  t

let read_line_impl s =
  let t = LP.create () in
  let cur = ref None in
  let parse_key no s =
    match String.split_on_char '.' s with
    | [ l; d ] -> (int_of no l, int_of no d)
    | _ -> fail no "bad line key %S" s
  in
  List.iter
    (fun { no; words } ->
      match words with
      | [ "function"; name; g; total; head ] ->
          let guid = hex_of no (parse_kv no g "guid") in
          let fe = LP.get_or_add t guid ~name in
          ignore (parse_kv no total "total");
          fe.LP.fe_head <- int64_of no (parse_kv no head "head");
          cur := Some fe
      | [ "line"; key; c ] -> (
          match !cur with
          | Some fe -> LP.set_line_max fe (parse_key no key) (int64_of no c)
          | None -> fail no "line record outside function")
      | [ "callline"; key; callee; c ] -> (
          match !cur with
          | Some fe -> LP.add_call fe (parse_key no key) (hex_of no callee) (int64_of no c)
          | None -> fail no "callline record outside function")
      | w :: _ -> fail no "unknown record %S" w
      | [] -> ())
    (tokenize_lines s);
  t

(* ------------------------------------------------------------------ *)
(* Unified interface.                                                  *)

type kind = Line | Probe | Ctx

type profile =
  | Line_prof of LP.t
  | Probe_prof of PP.t
  | Ctx_prof of CP.t

let kind_name = function Line -> "line" | Probe -> "probe" | Ctx -> "ctx"
let kind_of = function Line_prof _ -> Line | Probe_prof _ -> Probe | Ctx_prof _ -> Ctx

let write fmt = function
  | Line_prof t -> write_line fmt t
  | Probe_prof t -> write_probe fmt t
  | Ctx_prof t -> write_ctx fmt t

let to_string p = Format.asprintf "%a" write p

let read kind s =
  match kind with
  | Line -> Line_prof (read_line_impl s)
  | Probe -> Probe_prof (read_probe_impl s)
  | Ctx -> Ctx_prof (read_ctx_impl s)

let detect_kind s =
  match tokenize_lines s with
  | [] -> None
  | { words; _ } :: _ -> (
      match words with
      | "context" :: _ -> Some Ctx
      | "function" :: rest ->
          if List.exists (fun w -> String.length w >= 9 && String.sub w 0 9 = "checksum=") rest
          then Some Probe
          else Some Line
      | _ -> Some Probe (* headerless garbage: let the probe reader report it *))

let of_string ?kind s =
  match kind with
  | Some k -> read k s
  | None -> (
      match detect_kind s with
      | Some k -> read k s
      | None -> raise (Parse_error ("empty profile text: cannot detect kind", 0)))

let total_samples = function
  | Line_prof t -> LP.total_samples t
  | Probe_prof t -> PP.total_samples t
  | Ctx_prof t -> CP.total_samples t
