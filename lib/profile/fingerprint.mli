(** Per-function profile fingerprints: a 64-bit FNV digest of everything a
    profile says about one function — CFG checksum, head/entry count, and
    every (location, count) and callsite record, context frames included
    for trie profiles. Two profiles assign a function equal fingerprints
    iff their canonical text agrees on that function, so fingerprint
    deltas are exactly profile drift at function granularity.

    This is the delta signal behind incremental PGO rebuilds
    ([Core.Driver.Plan]): a rebuild keys its cached artifacts on the
    merged fingerprint, and a per-function comparison of two profiles
    names the drifted-hot functions that actually need recompiling. *)

val per_func : Text_io.profile -> (Csspgo_ir.Guid.t * int64) list
(** One (guid, fingerprint) pair per function mentioned by the profile,
    sorted by guid. For context tries every node contributes to its leaf
    function's fingerprint, tagged with the full context chain. *)

val merged : Text_io.profile -> int64
(** Whole-profile digest: FNV over the sorted {!per_func} list. Equal to
    [merged] of another profile iff no function drifted. *)

val delta :
  (Csspgo_ir.Guid.t * int64) list ->
  (Csspgo_ir.Guid.t * int64) list ->
  Csspgo_ir.Guid.t list
(** [delta old new_] is the sorted guid list where the two fingerprint
    maps disagree — changed, added, or removed functions. Inputs must be
    sorted by guid (as {!per_func} returns them). *)
