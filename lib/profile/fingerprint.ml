module Ir = Csspgo_ir
module Fnv = Csspgo_support.Fnv
module PP = Probe_profile
module CP = Ctx_profile
module LP = Line_profile

let sorted_probes (fe : PP.fentry) =
  Hashtbl.fold (fun id c acc -> (id, c) :: acc) fe.PP.fe_probes [] |> List.sort compare

let sorted_calls (fe : PP.fentry) =
  Hashtbl.fold
    (fun site tbl acc ->
      Hashtbl.fold (fun callee c acc -> (site, callee, c) :: acc) tbl acc)
    fe.PP.fe_calls []
  |> List.sort compare

let fentry_digest acc (fe : PP.fentry) =
  let acc = Fnv.int64 acc fe.PP.fe_head in
  let acc = Fnv.int64 acc fe.PP.fe_checksum in
  let acc =
    List.fold_left
      (fun acc (id, c) -> Fnv.int64 (Fnv.int acc id) c)
      (Fnv.int acc 1) (sorted_probes fe)
  in
  List.fold_left
    (fun acc (site, callee, c) -> Fnv.int64 (Fnv.int64 (Fnv.int acc site) callee) c)
    (Fnv.int acc 2) (sorted_calls fe)

let line_fentry_digest acc (fe : LP.fentry) =
  let acc = Fnv.int64 acc fe.LP.fe_head in
  let lines =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) fe.LP.fe_lines [] |> List.sort compare
  in
  let acc =
    List.fold_left
      (fun acc ((l, d), c) -> Fnv.int64 (Fnv.int (Fnv.int acc l) d) c)
      (Fnv.int acc 1) lines
  in
  let calls =
    Hashtbl.fold
      (fun k tbl acc -> Hashtbl.fold (fun g c acc -> (k, g, c) :: acc) tbl acc)
      fe.LP.fe_calls []
    |> List.sort compare
  in
  List.fold_left
    (fun acc ((l, d), g, c) ->
      Fnv.int64 (Fnv.int64 (Fnv.int (Fnv.int acc l) d) g) c)
    (Fnv.int acc 2) calls

(* Accumulate one digest per guid; tables keep insertion cheap, the final
   sort restores determinism. *)
let collect fold =
  let tbl = Ir.Guid.Tbl.create 64 in
  let bump guid f =
    let cur = Option.value (Ir.Guid.Tbl.find_opt tbl guid) ~default:Fnv.init in
    Ir.Guid.Tbl.replace tbl guid (f cur)
  in
  fold bump;
  Ir.Guid.Tbl.fold (fun g d acc -> (g, d) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Ir.Guid.compare a b)

let per_func = function
  | Text_io.Probe_prof t ->
      collect (fun bump ->
          Ir.Guid.Tbl.fold (fun g fe acc -> (g, fe) :: acc) t.PP.funcs []
          |> List.sort compare
          |> List.iter (fun (g, fe) -> bump g (fun acc -> fentry_digest acc fe)))
  | Text_io.Line_prof t ->
      collect (fun bump ->
          Ir.Guid.Tbl.fold (fun g fe acc -> (g, fe) :: acc) t.LP.funcs []
          |> List.sort compare
          |> List.iter (fun (g, fe) -> bump g (fun acc -> line_fentry_digest acc fe)))
  | Text_io.Ctx_prof t ->
      collect (fun bump ->
          (* iter_nodes is a sorted DFS, so per-leaf accumulation order is
             deterministic; the context chain is folded in so a count that
             merely moves between contexts still changes the fingerprint. *)
          CP.iter_nodes t (fun ctx node ->
              bump node.CP.n_func (fun acc ->
                  let acc =
                    List.fold_left
                      (fun acc (g, site) -> Fnv.int (Fnv.int64 acc g) site)
                      (Fnv.int acc (List.length ctx))
                      ctx
                  in
                  let acc = Fnv.int acc (if node.CP.n_inlined then 1 else 0) in
                  fentry_digest acc node.CP.n_prof)))

let merged p =
  List.fold_left
    (fun acc (g, d) -> Fnv.int64 (Fnv.int64 acc g) d)
    Fnv.init (per_func p)

let delta old_fps new_fps =
  let rec go acc a b =
    match (a, b) with
    | [], [] -> List.rev acc
    | (g, _) :: a', [] -> go (g :: acc) a' []
    | [], (g, _) :: b' -> go (g :: acc) [] b'
    | (ga, da) :: a', (gb, db) :: b' ->
        let c = Ir.Guid.compare ga gb in
        if c < 0 then go (ga :: acc) a' b
        else if c > 0 then go (gb :: acc) a b'
        else if Int64.equal da db then go acc a' b'
        else go (ga :: acc) a' b'
  in
  go [] old_fps new_fps
