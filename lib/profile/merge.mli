(** Weighted profile merging — the fleet/continuous-profiling primitive:
    combine profiles collected on many instances (and, after stale
    matching, many binary versions) into one.

    Merging is defined per shape and obeys four laws, each checked by the
    QCheck battery and the fleet fuzz oracle against canonical
    {!Text_io.to_string} bytes:

    - {e commutative}: [a ⊕ b = b ⊕ a];
    - {e associative}: [(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)];
    - {e weight-linear}: merging [p] at weight [w] equals merging [w]
      copies of [p] at weight 1;
    - {e identity on empty}: merging the empty profile changes nothing,
      and merging [p] into a fresh empty profile at weight 1 reproduces
      [p] byte-for-byte.

    Count semantics: probe/line/call/head counts are scaled by the weight
    and added (totals follow, maintained by the accumulation API).
    Metadata must merge through commutative-monoid operations for the laws
    to hold: checksums combine by {e unsigned} max (0 = absent, so a real
    checksum always wins over a missing one), names by minimum non-empty
    string, and context [n_inlined] marks by logical or. Context tries
    unify structurally via {!Ctx_profile.attach} — same (callsite, callee)
    chain, same node.

    The operations mutate [into] and never the source, so a fold over
    sources is linear in their total size. Order independence of the
    result (not just its serialization) is what lets the fleet collector
    reduce per-shard partial merges in parallel. *)

val probe : into:Probe_profile.t -> weight:int64 -> Probe_profile.t -> unit
val line : into:Line_profile.t -> weight:int64 -> Line_profile.t -> unit
val ctx : into:Ctx_profile.t -> weight:int64 -> Ctx_profile.t -> unit
(** Per-shape accumulation. [weight] must be non-negative; weight 0 is a
    no-op (no counts and no structure land in [into], so zero-weight
    sources cannot perturb the canonical text).
    @raise Invalid_argument on a negative weight. *)

val into : into:Text_io.profile -> weight:int64 -> Text_io.profile -> unit
(** Kind-dispatched accumulation.
    @raise Invalid_argument when the two profiles are of different kinds. *)

val empty : Text_io.kind -> Text_io.profile
(** A fresh empty profile of the kind — the merge identity. *)

val weighted : kind:Text_io.kind -> (int64 * Text_io.profile) list -> Text_io.profile
(** Merge a weighted list into a fresh profile. The inputs are untouched;
    the result is independent of list order. Every profile must be of
    [kind] ({!into}'s kind check applies). *)

val copy : Text_io.profile -> Text_io.profile
(** [weighted] of the singleton at weight 1: a deep copy. *)

val flatten_ctx : Ctx_profile.t -> Probe_profile.t
(** Context-merged view of a trie: every node's counts folded into a flat
    probe profile per function — the quality-baseline shape ("CSSPGO" row
    of Table I) for callers that hold only the trie. *)
