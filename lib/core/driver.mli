(** The CSSPGO driver: end-to-end build → profile → re-build pipelines for
    every PGO variant evaluated in the paper (§IV).

    All sampling variants share one profiling setup — a statically optimized
    (-O2, no profile) build, sampled with the synchronized LBR + stack PMU —
    differing only in whether pseudo-probes are present and how the samples
    are correlated. Instrumentation PGO builds a counter-instrumented binary
    whose (slow) training run yields exact block counts. *)

type run_spec = {
  rs_args : int64 list;
  rs_globals : (string * int64 array) list;
}

type workload = {
  w_name : string;
  w_source : string;  (** MiniC *)
  w_entry : string;
  w_train : run_spec list;
  w_eval : run_spec list;
}

type variant =
  | Nopgo
  | Instr_pgo
  | Autofdo
  | Csspgo_probe_only
  | Csspgo_full

val variant_name : variant -> string

type options = {
  pmu : Csspgo_vm.Machine.pmu;
  opt_profiling : Csspgo_opt.Config.t;  (** pipeline for profiling builds *)
  opt_final : Csspgo_opt.Config.t;      (** pipeline for optimized builds *)
  emit_opts : Csspgo_codegen.Emit.options;
  trim_threshold : int64;               (** cold-context trimming (0 = off) *)
  preinline : Preinliner.config option; (** [None] disables the pre-inliner *)
  use_missing_frame_inference : bool;
}

val default_options : options

type eval = {
  ev_cycles : int64;
  ev_instructions : int64;
  ev_icache_misses : int64;
  ev_taken_branches : int64;
}

type outcome = {
  o_variant : variant;
  o_eval : eval;                       (** optimized binary on eval inputs *)
  o_text_size : int;
  o_debug_size : int;
  o_probe_meta_size : int;
  o_profiling_cycles : int64;          (** cost of the training run(s) *)
  o_annotated : Csspgo_ir.Program.t;   (** annotated pre-opt IR (for quality) *)
  o_stales : Annotate.stale list;
  o_recon_stats : Ctx_reconstruct.stats option;  (** full CSSPGO only *)
  o_preinline_decisions : Preinliner.decision list;
  o_binary : Csspgo_codegen.Mach.binary;
  o_profile_size : int;                (** serialized profile estimate, bytes *)
  o_stale_report : Stale_match.report option;
      (** present iff the plan ran a [Stale_apply] stage *)
}

(** {1 Staged build plans}

    The supported public surface for running variants. A plan is an explicit
    list of pipeline stages — each a record with named fields describing its
    declared inputs — built by {!Plan.make} and interpreted by {!Plan.run}.
    The orchestrator ([Csspgo_orchestrator]) schedules independent plans
    across domains and threads an artifact cache through {!Plan.hooks}. *)

module Plan : sig
  type compile_spec = {
    c_source : string;  (** MiniC source to lower *)
    c_probes : bool;    (** insert pseudo-probes after lowering *)
  }

  type instrument_spec = {
    i_counters : bool;  (** per-block counter increments (instr-PGO) *)
    i_values : bool;    (** divisor value-capture probes *)
  }

  type profile_run_spec = {
    p_config : Csspgo_opt.Config.t;       (** pipeline for the profiling build *)
    p_emit : Csspgo_codegen.Emit.options;
    p_pmu : Csspgo_vm.Machine.pmu option; (** [None] = no sampling (instr-PGO) *)
    p_entry : string;
    p_train : run_spec list;
  }

  (** How raw profiling output becomes an annotatable profile. *)
  type correlator =
    | Corr_lines      (** DWARF line correlation (AutoFDO) *)
    | Corr_probes     (** pseudo-probe correlation, contexts merged *)
    | Corr_ctx of { cc_missing_frames : bool; cc_trim_threshold : int64 }
        (** context-trie reconstruction (full CSSPGO) *)
    | Corr_counters of { cn_min_count : int64; cn_min_ratio : float }
        (** exact block counts + dominant divisor values (instr-PGO) *)

  type correlate_spec = { x_correlator : correlator }

  type preinline_spec = { pi_config : Preinliner.config option }
  (** [None] merges every context into base (pre-inliner disabled). *)

  type rebuild_spec = {
    r_probes : bool;
    r_prepass : Csspgo_opt.Config.t option;
        (** statically optimize before annotation (the no-PGO baseline) *)
    r_config : Csspgo_opt.Config.t;       (** final optimization pipeline *)
    r_emit : Csspgo_codegen.Emit.options;
  }

  type evaluate_spec = { e_entry : string; e_eval : run_spec list }

  type stale_spec = {
    st_source : string;
        (** the drifted "version N+1" MiniC source; also replaces the plan's
            workload source for the final [Rebuild] *)
    st_probes : bool;  (** insert pseudo-probes into the match target *)
  }
  (** Stale-profile matching stage: the profile correlated so far (from the
      {e old} source) is re-anchored onto the pre-opt IR of [st_source] via
      {!Stale_match}, and the final build compiles [st_source]. *)

  type use_spec = {
    u_text : string;
        (** canonical {!Csspgo_profile.Text_io} text of the injected
            profile (any sampling shape) *)
    u_flat_text : string option;
        (** for context profiles: the flat (context-merged) probe profile
            used as the quality baseline; when [None] the trie is
            flattened via {!Csspgo_profile.Merge.flatten_ctx} *)
  }
  (** Profile-injection stage: adopt an externally produced profile —
      merged across a fleet, carried over a release train — as if a
      [Correlate] stage had just built it. Replaces the
      [Compile; Profile_run; Correlate] prefix. *)

  type stage =
    | Compile of compile_spec
    | Instrument of instrument_spec
    | Profile_run of profile_run_spec
    | Correlate of correlate_spec
    | Use_profile of use_spec
    | Stale_apply of stale_spec
    | Preinline of preinline_spec
    | Rebuild of rebuild_spec
    | Evaluate of evaluate_spec

  type t = {
    pl_variant : variant;
    pl_workload : workload;
    pl_options : options;
    pl_stages : stage list;
  }

  val make : ?options:options -> variant:variant -> workload -> t
  (** The staged equivalent of the old monolithic [run_variant] recipes:
      every variant becomes an explicit stage list ending in
      [Rebuild; Evaluate]. *)

  val make_stale :
    ?options:options -> variant:variant -> stale_source:string -> workload -> t
  (** {!make}, with a [Stale_apply stale_source] stage inserted directly
      after [Correlate] — profile on [w.w_source], match against and rebuild
      [stale_source]. Only meaningful for sampling variants; raises
      [Invalid_argument] for [Nopgo] / [Instr_pgo]. *)

  val make_with_profile :
    ?options:options ->
    profile:Csspgo_profile.Text_io.profile ->
    ?flat:Csspgo_profile.Probe_profile.t ->
    workload ->
    t
  (** A plan that injects [profile] instead of collecting one:
      [Use_profile; (Preinline for context shapes); Rebuild; Evaluate]
      against [w.w_source]. The variant is implied by the profile's kind
      (line → [Autofdo], probe → [Csspgo_probe_only], ctx →
      [Csspgo_full]); [flat] is the context shape's quality baseline. The
      fleet release train rebuilds every generation through this. *)

  type hooks = {
    memo :
      'a.
      kind:string ->
      key:string list ->
      ser:('a -> string) ->
      de:(string -> 'a) ->
      (unit -> 'a) ->
      'a;
    stat : name:string -> int -> unit;
    span : 'a. name:string -> (unit -> 'a) -> 'a;
    metrics : Csspgo_obs.Metrics.t;
    jobs : int;
  }
  (** [memo] is the memoization hook threaded through {!run}. [kind] names
      the stage family (["ref-info"], ["profile-run"], ["correlate"],
      ["final-build"], ["evaluate"]); [key] is the content-addressed cache
      key (source hash, spec fingerprints, probe/function checksum digest);
      [ser]/[de] convert the stage value to/from bytes (profiles serialize
      as canonical {!Csspgo_profile.Text_io} text). A hook must either
      return the thunk's result or a deserialized value from a previous
      identical call.

      [stat] receives per-stage counters (fired on cache hits too):
      ["profile-run.samples"], ["profile-run.log-words"],
      ["correlate.profile-bytes"], ["correlate.recon-samples"],
      ["correlate.recon-dropped"], ["correlate.gaps-resolved"],
      ["correlate.gaps-failed"].

      [span] wraps the execution of each stage; [name] is {!stage_name} of
      the stage. Hooks may open a trace span there — the default runs the
      thunk untouched.

      [metrics] is handed to the VM, the correlators, and context
      reconstruction for their hot-path instruments ([vm.*], [probe-corr.*],
      [dwarf-corr.*], [ctx.*], [missing-frame.*]). {!Csspgo_obs.Metrics.null}
      disables them. Note that memoized stages skip their thunk on a cache
      hit, so registry counts depend on cache warmth; only the [stat]
      counters above are warmth-independent.

      [jobs] is the intra-stage parallelism knob: a [Correlate] stage with
      [jobs > 1] runs context reconstruction through the sharded
      correlator ({!Par_corr}) on up to [jobs] domains. The result is
      byte-identical to serial at any [jobs] — which is why [jobs] is
      {e not} part of any memo key: a cache entry written at one job count
      is valid at every other. *)

  val default_hooks : hooks
  (** Runs every thunk directly — no caching; drops stats; null metrics;
      [jobs = 1] (serial stages). *)

  val stage_name : stage -> string
  (** Stable lower-case stage label: ["compile"], ["instrument"],
      ["profile-run"], ["correlate"], ["use-profile"], ["stale-apply"],
      ["preinline"], ["rebuild"], ["evaluate"]. Used as span names and in
      reports. *)

  val run : ?hooks:hooks -> t -> outcome
  (** Interpret the stages in order. Raises [Invalid_argument] on malformed
      plans (e.g. [Profile_run] before [Compile], or a missing [Rebuild] /
      [Evaluate] tail). Deterministic: equal plans produce byte-identical
      binaries and profiles. *)
end

val run_variant : ?options:options -> variant -> workload -> outcome
(** Thin wrapper: [Plan.run (Plan.make ?options ~variant w)]. *)

val evaluate : Csspgo_codegen.Mach.binary -> workload -> eval
(** Run the eval inputs (no PMU) and aggregate. *)

val profile_pipeline_texts :
  ?options:options -> streaming:bool -> variant -> workload -> (string * string) list
(** The byte-identity oracle behind the streaming refactor: build the
    variant's profiling binary, run the training inputs, correlate, and
    return the resulting canonical {!Csspgo_profile.Text_io} dumps as
    [(tag, text)] pairs — via the materialized sample-list pipeline
    ([streaming:false]) or the zero-materialization sink pipeline
    ([streaming:true], which also runs the VM with scratch poisoning on).
    The two must be byte-equal for every variant; [Nopgo]/[Instr_pgo] have
    no sampled profile and return []. [Csspgo_full] yields both the context
    trie (trimmed as the plan would) and the flat probe profile. *)
