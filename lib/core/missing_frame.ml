module Ir = Csspgo_ir
module Mach = Csspgo_codegen.Mach
module Vm = Csspgo_vm
module Pg = Csspgo_profgen

type t = {
  (* function guid -> outgoing tail-call edges (call addr, target function) *)
  edges : (int * Ir.Guid.t) list Ir.Guid.Tbl.t;
  n_edges : int;
}

type builder = {
  mb_index : Pg.Bindex.t;
  mb_edges : (int * Ir.Guid.t) list Ir.Guid.Tbl.t;
  mb_seen : (int * int, unit) Hashtbl.t;
  mutable mb_n : int;
  mb_obs : Csspgo_obs.Metrics.t;
}

let start ?(obs = Csspgo_obs.Metrics.null) index =
  {
    mb_index = index;
    mb_edges = Ir.Guid.Tbl.create 16;
    mb_seen = Hashtbl.create 64;
    mb_n = 0;
    mb_obs = obs;
  }

let feed mb ~lbr ~lbr_len =
  for i = 0 to lbr_len - 1 do
    let ((src, tgt) as pair) = lbr.(i) in
    if not (Hashtbl.mem mb.mb_seen pair) then begin
      Hashtbl.replace mb.mb_seen pair ();
      if Pg.Bindex.kind_of_addr mb.mb_index src = Pg.Bindex.K_tail_call then
        match
          ( Pg.Bindex.func_guid_of_addr mb.mb_index src,
            Pg.Bindex.func_guid_of_addr mb.mb_index tgt )
        with
        | Some from_g, Some to_g ->
            let cur = Option.value (Ir.Guid.Tbl.find_opt mb.mb_edges from_g) ~default:[] in
            if not (List.exists (fun (a, g) -> a = src && Ir.Guid.equal g to_g) cur)
            then begin
              Ir.Guid.Tbl.replace mb.mb_edges from_g (cur @ [ (src, to_g) ]);
              mb.mb_n <- mb.mb_n + 1
            end
        | _ -> ()
    end
  done

let finish mb =
  let module M = Csspgo_obs.Metrics in
  M.bump (M.counter mb.mb_obs "missing-frame.edges") mb.mb_n;
  { edges = mb.mb_edges; n_edges = mb.mb_n }

let build (b : Mach.binary) samples =
  let mb = start (Pg.Bindex.create b) in
  List.iter
    (fun (s : Vm.Machine.sample) ->
      feed mb ~lbr:s.Vm.Machine.s_lbr ~lbr_len:(Array.length s.Vm.Machine.s_lbr))
    samples;
  finish mb

let n_edges t = t.n_edges

(* Edge-table union, the sharded correlator's reduction step: per-shard
   builders see only their shard's LBR stream, so their edge sets may each
   miss edges the other saw. Per-function lists concatenate left-then-
   unseen-right, which can order edges differently than one builder fed
   the whole stream — harmless, because [resolve] enumerates *all* acyclic
   paths and succeeds only on uniqueness, so its verdict depends on the
   edge *set* only. The union of the shard sets is exactly the serial set
   (an edge is recorded iff some sample's LBR carries its pair). *)
let union a b =
  let edges = Ir.Guid.Tbl.create (max 16 (Ir.Guid.Tbl.length a.edges)) in
  let n = ref 0 in
  Ir.Guid.Tbl.iter
    (fun g es ->
      Ir.Guid.Tbl.replace edges g es;
      n := !n + List.length es)
    a.edges;
  Ir.Guid.Tbl.iter
    (fun g es ->
      let cur = Option.value (Ir.Guid.Tbl.find_opt edges g) ~default:[] in
      let fresh =
        List.filter
          (fun (addr, tgt) ->
            not (List.exists (fun (a', t') -> a' = addr && Ir.Guid.equal t' tgt) cur))
          es
      in
      if fresh <> [] then begin
        Ir.Guid.Tbl.replace edges g (cur @ fresh);
        n := !n + List.length fresh
      end)
    b.edges;
  { edges; n_edges = !n }

let max_depth = 8

let resolve t ~from_func ~to_func =
  if Ir.Guid.equal from_func to_func then Some []
  else begin
    (* Enumerate all acyclic tail-call paths from [from_func] whose final
       edge targets [to_func]; unique -> success. *)
    let paths = ref [] in
    let rec go cur path visited depth =
      if depth <= max_depth && List.length !paths < 2 then
        List.iter
          (fun (addr, target) ->
            if Ir.Guid.equal target to_func then paths := List.rev (addr :: path) :: !paths
            else if not (List.exists (Ir.Guid.equal target) visited) then
              go target (addr :: path) (target :: visited) (depth + 1))
          (Option.value (Ir.Guid.Tbl.find_opt t.edges cur) ~default:[])
    in
    go from_func [] [ from_func ] 0;
    match !paths with [ p ] -> Some p | _ -> None
  end
