module Ir = Csspgo_ir
module Mach = Csspgo_codegen.Mach
module Vm = Csspgo_vm
module Pg = Csspgo_profgen

type t = {
  (* function guid -> outgoing tail-call edges (call addr, target function) *)
  edges : (int * Ir.Guid.t) list Ir.Guid.Tbl.t;
  n_edges : int;
}

type builder = {
  mb_index : Pg.Bindex.t;
  mb_edges : (int * Ir.Guid.t) list Ir.Guid.Tbl.t;
  mb_seen : (int * int, unit) Hashtbl.t;
  mutable mb_n : int;
  mb_obs : Csspgo_obs.Metrics.t;
}

let start ?(obs = Csspgo_obs.Metrics.null) index =
  {
    mb_index = index;
    mb_edges = Ir.Guid.Tbl.create 16;
    mb_seen = Hashtbl.create 64;
    mb_n = 0;
    mb_obs = obs;
  }

let feed mb ~lbr ~lbr_len =
  for i = 0 to lbr_len - 1 do
    let ((src, tgt) as pair) = lbr.(i) in
    if not (Hashtbl.mem mb.mb_seen pair) then begin
      Hashtbl.replace mb.mb_seen pair ();
      if Pg.Bindex.kind_of_addr mb.mb_index src = Pg.Bindex.K_tail_call then
        match
          ( Pg.Bindex.func_guid_of_addr mb.mb_index src,
            Pg.Bindex.func_guid_of_addr mb.mb_index tgt )
        with
        | Some from_g, Some to_g ->
            let cur = Option.value (Ir.Guid.Tbl.find_opt mb.mb_edges from_g) ~default:[] in
            if not (List.exists (fun (a, g) -> a = src && Ir.Guid.equal g to_g) cur)
            then begin
              Ir.Guid.Tbl.replace mb.mb_edges from_g (cur @ [ (src, to_g) ]);
              mb.mb_n <- mb.mb_n + 1
            end
        | _ -> ()
    end
  done

let finish mb =
  let module M = Csspgo_obs.Metrics in
  M.bump (M.counter mb.mb_obs "missing-frame.edges") mb.mb_n;
  { edges = mb.mb_edges; n_edges = mb.mb_n }

let build (b : Mach.binary) samples =
  let mb = start (Pg.Bindex.create b) in
  List.iter
    (fun (s : Vm.Machine.sample) ->
      feed mb ~lbr:s.Vm.Machine.s_lbr ~lbr_len:(Array.length s.Vm.Machine.s_lbr))
    samples;
  finish mb

let n_edges t = t.n_edges

let max_depth = 8

let resolve t ~from_func ~to_func =
  if Ir.Guid.equal from_func to_func then Some []
  else begin
    (* Enumerate all acyclic tail-call paths from [from_func] whose final
       edge targets [to_func]; unique -> success. *)
    let paths = ref [] in
    let rec go cur path visited depth =
      if depth <= max_depth && List.length !paths < 2 then
        List.iter
          (fun (addr, target) ->
            if Ir.Guid.equal target to_func then paths := List.rev (addr :: path) :: !paths
            else if not (List.exists (Ir.Guid.equal target) visited) then
              go target (addr :: path) (target :: visited) (depth + 1))
          (Option.value (Ir.Guid.Tbl.find_opt t.edges cur) ~default:[])
    in
    go from_func [] [ from_func ] 0;
    match !paths with [ p ] -> Some p | _ -> None
  end
