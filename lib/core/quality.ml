module Ir = Csspgo_ir

let func_overlap ~(truth : Ir.Func.t) (cand : Ir.Func.t) =
  let sum f = Int64.to_float (Ir.Func.total_count f) in
  let st = sum truth and sc = sum cand in
  if st <= 0.0 || sc <= 0.0 then None
  else begin
    let overlap = ref 0.0 in
    Ir.Func.iter_blocks
      (fun bt ->
        match Ir.Func.find_block cand bt.Ir.Block.id with
        | Some bc ->
            let ft = Int64.to_float bt.Ir.Block.count /. st in
            let fc = Int64.to_float bc.Ir.Block.count /. sc in
            overlap := !overlap +. min ft fc
        | None -> ())
      truth;
    Some !overlap
  end

let block_overlap ~(truth : Ir.Program.t) (cand : Ir.Program.t) =
  let total_weight = ref 0.0 in
  let acc = ref 0.0 in
  Ir.Program.iter_funcs
    (fun ct ->
      match Ir.Program.find_func truth ct.Ir.Func.name with
      | None -> ()
      | Some tf -> (
          let w = Int64.to_float (Ir.Func.total_count ct) in
          match func_overlap ~truth:tf ct with
          | Some d when w > 0.0 ->
              acc := !acc +. (d *. w);
              total_weight := !total_weight +. w
          | _ -> ()))
    cand;
  if !total_weight <= 0.0 then 0.0 else !acc /. !total_weight

(* Flatten a profile into a (key, count) table for distribution overlap.
   Keys are (guid, a, b): probe profiles use (guid, probe, 0) body counts,
   line profiles (guid, line, disc); context tries flatten to their
   context-merged probe view first. *)
let profile_counts (p : Csspgo_profile.Text_io.profile) =
  let module P = Csspgo_profile in
  let tbl : (Ir.Guid.t * int * int, int64) Hashtbl.t = Hashtbl.create 64 in
  let add key c =
    if Int64.compare c 0L > 0 then
      let prev = try Hashtbl.find tbl key with Not_found -> 0L in
      Hashtbl.replace tbl key (Int64.add prev c)
  in
  let probe (pp : P.Probe_profile.t) =
    Ir.Guid.Tbl.iter
      (fun guid fe ->
        Hashtbl.iter
          (fun id c -> add (guid, id, 0) c)
          fe.P.Probe_profile.fe_probes)
      pp.P.Probe_profile.funcs
  in
  (match p with
  | P.Text_io.Probe_prof pp -> probe pp
  | P.Text_io.Ctx_prof cp -> probe (P.Merge.flatten_ctx cp)
  | P.Text_io.Line_prof lp ->
      Ir.Guid.Tbl.iter
        (fun guid fe ->
          Hashtbl.iter
            (fun (line, disc) c -> add (guid, line, disc) c)
            fe.P.Line_profile.fe_lines)
        lp.P.Line_profile.funcs);
  tbl

let profile_overlap a b =
  let module P = Csspgo_profile in
  if P.Text_io.kind_of a <> P.Text_io.kind_of b then
    invalid_arg "Quality.profile_overlap: profile kinds differ";
  let ta = profile_counts a and tb = profile_counts b in
  let total t = Hashtbl.fold (fun _ c acc -> Int64.to_float c +. acc) t 0.0 in
  let sa = total ta and sb = total tb in
  if sa <= 0.0 && sb <= 0.0 then 1.0
  else if sa <= 0.0 || sb <= 0.0 then 0.0
  else
    Hashtbl.fold
      (fun key ca acc ->
        match Hashtbl.find_opt tb key with
        | None -> acc
        | Some cb ->
            acc +. min (Int64.to_float ca /. sa) (Int64.to_float cb /. sb))
      ta 0.0

type recovery = { rec_stale : float; rec_fresh : float; rec_ratio : float }

let recovery ~truth ~fresh stale =
  let rec_stale = block_overlap ~truth stale in
  let rec_fresh = block_overlap ~truth fresh in
  (* Guard the ratio: a fresh profile with zero overlap (unexecuted
     workload, fully dropped annotation) must not yield NaN or inf. *)
  let rec_ratio = if rec_fresh > 0.0 then rec_stale /. rec_fresh else 1.0 in
  { rec_stale; rec_fresh; rec_ratio }
