module Ir = Csspgo_ir

let func_overlap ~(truth : Ir.Func.t) (cand : Ir.Func.t) =
  let sum f = Int64.to_float (Ir.Func.total_count f) in
  let st = sum truth and sc = sum cand in
  if st <= 0.0 || sc <= 0.0 then None
  else begin
    let overlap = ref 0.0 in
    Ir.Func.iter_blocks
      (fun bt ->
        match Ir.Func.find_block cand bt.Ir.Block.id with
        | Some bc ->
            let ft = Int64.to_float bt.Ir.Block.count /. st in
            let fc = Int64.to_float bc.Ir.Block.count /. sc in
            overlap := !overlap +. min ft fc
        | None -> ())
      truth;
    Some !overlap
  end

let block_overlap ~(truth : Ir.Program.t) (cand : Ir.Program.t) =
  let total_weight = ref 0.0 in
  let acc = ref 0.0 in
  Ir.Program.iter_funcs
    (fun ct ->
      match Ir.Program.find_func truth ct.Ir.Func.name with
      | None -> ()
      | Some tf -> (
          let w = Int64.to_float (Ir.Func.total_count ct) in
          match func_overlap ~truth:tf ct with
          | Some d when w > 0.0 ->
              acc := !acc +. (d *. w);
              total_weight := !total_weight +. w
          | _ -> ()))
    cand;
  if !total_weight <= 0.0 then 0.0 else !acc /. !total_weight

type recovery = { rec_stale : float; rec_fresh : float; rec_ratio : float }

let recovery ~truth ~fresh stale =
  let rec_stale = block_overlap ~truth stale in
  let rec_fresh = block_overlap ~truth fresh in
  (* Guard the ratio: a fresh profile with zero overlap (unexecuted
     workload, fully dropped annotation) must not yield NaN or inf. *)
  let rec_ratio = if rec_fresh > 0.0 then rec_stale /. rec_fresh else 1.0 in
  { rec_stale; rec_fresh; rec_ratio }
