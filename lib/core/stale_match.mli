(** Stale-profile matching: re-anchor a profile collected on binary N onto
    the IR of binary N+1 (§III.A's source-drift scenario, cf. LLVM's
    stale-profile matcher).

    The matcher never invents or silently loses a count: every input count
    is either transferred to a location of the target program (possibly at
    a different probe id / line key — "fuzzily reassigned") or explicitly
    dropped, and the per-function {!verdict}s account for both sides, so
    [v_total_in = v_recovered + v_dropped] always holds.

    {b Pseudo-probe profiles} use probe-ID anchor matching under a
    function-checksum guard: when the CFG-shape checksum recorded in the
    profile still matches the target function, every probe id is carried
    over unchanged ([Exact]); on a mismatch, callsite probes are re-anchored
    by callee GUID (call sites calling the same function are aligned in
    order) and block probes keep their id when it still names a block in the
    new function. The matched profile is stamped with the {e new} checksum,
    so downstream annotation ({!Annotate.probes}) accepts it.

    {b Line profiles} (the DWARF/AutoFDO shape) have no checksums: call
    sites are anchored by callee GUID, non-anchor keys are shifted by the
    nearest preceding anchor's line delta, and keys that still miss fall
    back to the nearest valid (line, discriminator) within a small radius.
    This decays under drift — which is the paper's point.

    {b Context tries} apply the probe matcher at every context node and
    remap the (callsite, callee) frame keys along each context chain; a
    node whose chain can no longer be spelled in the new binary drops with
    its subtree.

    Functions whose GUID no longer exists (renamed or removed) are
    [Dropped] wholesale. All outputs are deterministic: verdicts are sorted
    by function name and matched profiles serialize canonically through
    {!Csspgo_profile.Text_io}. *)

type status = Exact | Fuzzy | Dropped

val status_name : status -> string

type verdict = {
  v_name : string;
  v_guid : Csspgo_ir.Guid.t;
  v_status : status;
  v_total_in : int64;  (** counts in the input profile for this function *)
  v_recovered : int64;  (** transferred onto the target program *)
  v_dropped : int64;  (** invariant: [v_total_in = v_recovered + v_dropped] *)
}

type report = {
  r_verdicts : verdict list;  (** sorted by function name *)
  r_exact : int;
  r_fuzzy : int;
  r_dropped : int;
  r_total_in : int64;
  r_recovered : int64;
  r_dropped_counts : int64;
}

val report_to_string : report -> string
(** Multi-line human rendering: one row per verdict plus a totals line. *)

val recovery_rate : report -> float
(** [r_recovered / r_total_in]; 1.0 when the input profile is empty. *)

(** Each matcher takes the {e pre-optimization} IR of the new build as
    [target] — probe matchers require {!Pseudo_probe.insert} to have run on
    it (checksums and probe ids present), the line matcher only needs debug
    locations — and emits [stale.*] counters to [obs]. *)

val match_probe :
  ?obs:Csspgo_obs.Metrics.t ->
  target:Csspgo_ir.Program.t ->
  Csspgo_profile.Probe_profile.t ->
  Csspgo_profile.Probe_profile.t * report

val match_line :
  ?obs:Csspgo_obs.Metrics.t ->
  target:Csspgo_ir.Program.t ->
  Csspgo_profile.Line_profile.t ->
  Csspgo_profile.Line_profile.t * report

val match_ctx :
  ?obs:Csspgo_obs.Metrics.t ->
  target:Csspgo_ir.Program.t ->
  Csspgo_profile.Ctx_profile.t ->
  Csspgo_profile.Ctx_profile.t * report
(** Per-function verdicts aggregate over a function's context nodes:
    [Exact] iff every node matched exactly, [Dropped] iff every node
    dropped, [Fuzzy] otherwise. Pre-inliner marks ([n_inlined]) are
    preserved on matched nodes. *)
