open Csspgo_support
module Ir = Csspgo_ir
module I = Ir.Instr
module P = Csspgo_profile
module PP = P.Probe_profile
module LP = P.Line_profile
module CP = P.Ctx_profile
module Obs = Csspgo_obs

type status = Exact | Fuzzy | Dropped

let status_name = function Exact -> "exact" | Fuzzy -> "fuzzy" | Dropped -> "dropped"

type verdict = {
  v_name : string;
  v_guid : Ir.Guid.t;
  v_status : status;
  v_total_in : int64;
  v_recovered : int64;
  v_dropped : int64;
}

type report = {
  r_verdicts : verdict list;
  r_exact : int;
  r_fuzzy : int;
  r_dropped : int;
  r_total_in : int64;
  r_recovered : int64;
  r_dropped_counts : int64;
}

let recovery_rate r =
  if Int64.compare r.r_total_in 0L <= 0 then 1.0
  else Int64.to_float r.r_recovered /. Int64.to_float r.r_total_in

let report_to_string r =
  let buf = Buffer.create 256 in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %-7s in=%Ld recovered=%Ld dropped=%Ld\n" v.v_name
           (status_name v.v_status) v.v_total_in v.v_recovered v.v_dropped))
    r.r_verdicts;
  Buffer.add_string buf
    (Printf.sprintf "total: %d exact, %d fuzzy, %d dropped; counts %Ld/%Ld recovered (%.4f)\n"
       r.r_exact r.r_fuzzy r.r_dropped r.r_recovered r.r_total_in (recovery_rate r));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Verdict assembly shared by the three matchers.                      *)
(* ------------------------------------------------------------------ *)

let status_of ~present ~exact ~recovered ~dropped ~total =
  if not present then Dropped
  else if exact && Int64.equal dropped 0L then Exact
  else if Int64.equal recovered 0L && Int64.compare total 0L > 0 then Dropped
  else Fuzzy

let close_report ?(obs = Obs.Metrics.null) verdicts =
  let verdicts = List.sort (fun a b -> compare a.v_name b.v_name) verdicts in
  let count st = List.length (List.filter (fun v -> v.v_status = st) verdicts) in
  let sum f = List.fold_left (fun acc v -> Int64.add acc (f v)) 0L verdicts in
  let r =
    {
      r_verdicts = verdicts;
      r_exact = count Exact;
      r_fuzzy = count Fuzzy;
      r_dropped = count Dropped;
      r_total_in = sum (fun v -> v.v_total_in);
      r_recovered = sum (fun v -> v.v_recovered);
      r_dropped_counts = sum (fun v -> v.v_dropped);
    }
  in
  Obs.Metrics.bump (Obs.Metrics.counter obs "stale.funcs-exact") r.r_exact;
  Obs.Metrics.bump (Obs.Metrics.counter obs "stale.funcs-fuzzy") r.r_fuzzy;
  Obs.Metrics.bump (Obs.Metrics.counter obs "stale.funcs-dropped") r.r_dropped;
  Obs.Metrics.bump
    (Obs.Metrics.counter obs "stale.counts-recovered")
    (Int64.to_int r.r_recovered);
  Obs.Metrics.bump
    (Obs.Metrics.counter obs "stale.counts-dropped")
    (Int64.to_int r.r_dropped_counts);
  r

(* Deterministic iteration order over a profile's functions. *)
let sorted_guids tbl =
  Ir.Guid.Tbl.fold (fun g _ acc -> g :: acc) tbl [] |> List.sort Ir.Guid.compare

(* Highest-count callee of a callsite's target table; ties break toward the
   smaller guid so the anchor choice is schedule-independent. *)
let top_callee targets =
  Hashtbl.fold
    (fun g c best ->
      match best with
      | Some (bg, bc)
        when Int64.compare c bc < 0 || (Int64.equal c bc && Ir.Guid.compare g bg >= 0) ->
          best
      | _ -> Some (g, c))
    targets None

(* ------------------------------------------------------------------ *)
(* Probe matching.                                                     *)
(* ------------------------------------------------------------------ *)

type tprobe = {
  tp_fn : Ir.Func.t;
  tp_blocks : (int, unit) Hashtbl.t;  (* valid block probe ids *)
  tp_sites : (int, Ir.Guid.t) Hashtbl.t;  (* callsite probe id -> static callee *)
}

let probe_info (f : Ir.Func.t) =
  let blocks = Hashtbl.create 16 in
  let sites = Hashtbl.create 8 in
  Ir.Func.iter_blocks
    (fun b ->
      Vec.iter
        (fun (i : I.t) ->
          match i.I.op with
          | I.Probe p when p.I.p_kind = I.Block_probe -> Hashtbl.replace blocks p.I.p_id ()
          | I.Call c when c.I.c_probe > 0 ->
              Hashtbl.replace sites c.I.c_probe (Ir.Guid.of_name c.I.c_callee)
          | _ -> ())
        b.Ir.Block.instrs)
    f;
  { tp_fn = f; tp_blocks = blocks; tp_sites = sites }

(* Callee-guid anchor alignment: old call sites whose dominant target is g
   pair up, in site order, with new call sites statically calling g. Sites
   left unanchored shift by the delta of the nearest preceding anchor and
   must land on a real callsite probe of the new function. [extra] supplies
   additional (old site, callee) evidence beyond the fentry's own call
   records — context-trie children carry their callee in the frame key even
   when the node profile has no callsite counts. *)
let site_mapping ?(extra = []) (fe : PP.fentry) (tp : tprobe) =
  let push tbl k v =
    Hashtbl.replace tbl k (v :: Option.value (Hashtbl.find_opt tbl k) ~default:[])
  in
  let old_by = Hashtbl.create 8 in
  Hashtbl.iter
    (fun site targets ->
      match top_callee targets with Some (g, _) -> push old_by g site | None -> ())
    fe.PP.fe_calls;
  List.iter (fun (site, g) -> push old_by g site) extra;
  let new_by = Hashtbl.create 8 in
  Hashtbl.iter (fun site g -> push new_by g site) tp.tp_sites;
  let pairs = ref [] in
  Hashtbl.iter
    (fun g old_sites ->
      match Hashtbl.find_opt new_by g with
      | None -> ()
      | Some new_sites ->
          let rec zip a b =
            match (a, b) with
            | x :: a', y :: b' ->
                pairs := (x, y) :: !pairs;
                zip a' b'
            | _ -> ()
          in
          (* [extra] can repeat a site already in the call records —
             dedupe so the order-zip stays aligned. *)
          zip (List.sort_uniq compare old_sites) (List.sort_uniq compare new_sites))
    old_by;
  let anchors = List.sort compare !pairs in
  fun s ->
    match List.assoc_opt s anchors with
    | Some s' -> Some s'
    | None ->
        let delta =
          List.fold_left (fun d (o, n) -> if o <= s then n - o else d) 0 anchors
        in
        let s' = s + delta in
        if Hashtbl.mem tp.tp_sites s' then Some s' else None

type fmatch = { fm_exact : bool; fm_recovered : int64; fm_dropped : int64 }

(* Transfer one probe fentry onto [out], mapping ids per the target's shape.
   Every input count lands in fm_recovered or fm_dropped. *)
let match_probe_fentry ~(prog : Ir.Program.t) ~(tp : tprobe) (fe : PP.fentry)
    (out : PP.fentry) =
  let checksum_ok =
    Int64.equal fe.PP.fe_checksum 0L
    || Int64.equal fe.PP.fe_checksum tp.tp_fn.Ir.Func.checksum
  in
  (* Checksum match guarantees the block shape, so ids carry over; call
     sites are still validated (a deleted straight-line call changes no
     block). On a mismatch, blocks keep their id only if it still exists
     and call sites re-anchor by callee. *)
  let map_block p = if Hashtbl.mem tp.tp_blocks p then Some p else None in
  let map_site =
    if checksum_ok then fun s -> if Hashtbl.mem tp.tp_sites s then Some s else None
    else site_mapping fe tp
  in
  let recovered = ref 0L in
  let dropped = ref 0L in
  out.PP.fe_head <- Int64.add out.PP.fe_head fe.PP.fe_head;
  recovered := Int64.add !recovered fe.PP.fe_head;
  Hashtbl.iter
    (fun p c ->
      match map_block p with
      | Some p' ->
          PP.add_probe out p' c;
          recovered := Int64.add !recovered c
      | None -> dropped := Int64.add !dropped c)
    fe.PP.fe_probes;
  Hashtbl.iter
    (fun s targets ->
      match map_site s with
      | None -> Hashtbl.iter (fun _ c -> dropped := Int64.add !dropped c) targets
      | Some s' ->
          Hashtbl.iter
            (fun g c ->
              if Option.is_some (Ir.Program.find_func_by_guid prog g) then begin
                PP.add_call out s' g c;
                recovered := Int64.add !recovered c
              end
              else dropped := Int64.add !dropped c)
            targets)
    fe.PP.fe_calls;
  out.PP.fe_checksum <- tp.tp_fn.Ir.Func.checksum;
  { fm_exact = checksum_ok && Int64.equal !dropped 0L;
    fm_recovered = !recovered;
    fm_dropped = !dropped }

let probe_fentry_total (fe : PP.fentry) =
  let t = ref fe.PP.fe_head in
  Hashtbl.iter (fun _ c -> t := Int64.add !t c) fe.PP.fe_probes;
  Hashtbl.iter
    (fun _ targets -> Hashtbl.iter (fun _ c -> t := Int64.add !t c) targets)
    fe.PP.fe_calls;
  !t

let match_probe ?obs ~target (prof : PP.t) =
  let out = PP.create () in
  let verdicts = ref [] in
  List.iter
    (fun g ->
      let fe = Ir.Guid.Tbl.find prof.PP.funcs g in
      let name = Option.value (Ir.Guid.Tbl.find_opt prof.PP.names g) ~default:"?" in
      let total = probe_fentry_total fe in
      match Ir.Program.find_func_by_guid target g with
      | None ->
          verdicts :=
            { v_name = name; v_guid = g; v_status = Dropped; v_total_in = total;
              v_recovered = 0L; v_dropped = total }
            :: !verdicts
      | Some f ->
          let tp = probe_info f in
          let ofe = PP.get_or_add out g ~name in
          let fm = match_probe_fentry ~prog:target ~tp fe ofe in
          verdicts :=
            { v_name = name; v_guid = g;
              v_status =
                status_of ~present:true ~exact:fm.fm_exact ~recovered:fm.fm_recovered
                  ~dropped:fm.fm_dropped ~total;
              v_total_in = total; v_recovered = fm.fm_recovered;
              v_dropped = fm.fm_dropped }
            :: !verdicts)
    (sorted_guids prof.PP.funcs);
  (out, close_report ?obs !verdicts)

(* ------------------------------------------------------------------ *)
(* Line (DWARF/AutoFDO) matching.                                      *)
(* ------------------------------------------------------------------ *)

type tline = {
  tl_keys : (LP.key, unit) Hashtbl.t;  (* valid (line offset, discriminator) *)
  tl_calls : (LP.key, Ir.Guid.t) Hashtbl.t;  (* call-instruction keys *)
}

let line_info (f : Ir.Func.t) =
  let keys = Hashtbl.create 32 in
  let calls = Hashtbl.create 8 in
  Ir.Func.iter_blocks
    (fun b ->
      Vec.iter
        (fun (i : I.t) ->
          let d = i.I.dloc in
          if (not (Ir.Dloc.is_none d)) && Ir.Guid.equal d.Ir.Dloc.origin f.Ir.Func.guid
          then begin
            let k = (d.Ir.Dloc.line, d.Ir.Dloc.disc) in
            Hashtbl.replace keys k ();
            match i.I.op with
            | I.Call c -> Hashtbl.replace calls k (Ir.Guid.of_name c.I.c_callee)
            | _ -> ()
          end)
        b.Ir.Block.instrs)
    f;
  { tl_keys = keys; tl_calls = calls }

let nn_radius = 2

(* Map one key through the anchor deltas, then fall back to the nearest
   valid key of [valid] within [nn_radius] lines. Full lexicographic tie
   ordering keeps the choice deterministic. *)
let map_key ~anchors ~valid ((l, d) : LP.key) =
  match List.assoc_opt (l, d) anchors with
  | Some k -> Some k
  | None ->
      let delta =
        List.fold_left
          (fun acc ((lo, _), (ln, _)) -> if lo <= l then ln - lo else acc)
          0 anchors
      in
      let cand = (l + delta, d) in
      if Hashtbl.mem valid cand then Some cand
      else begin
        let best = ref None in
        Hashtbl.iter
          (fun (l', d') _ ->
            let cost = (abs (l' - (l + delta)), abs (d' - d), l', d') in
            if abs (l' - (l + delta)) <= nn_radius then
              match !best with
              | Some (bcost, _) when compare bcost cost <= 0 -> ()
              | _ -> best := Some (cost, (l', d')))
          valid;
        Option.map snd !best
      end

let match_line_fentry ~(prog : Ir.Program.t) ~(tl : tline) (fe : LP.fentry)
    (out : LP.fentry) =
  let identity_ok =
    Hashtbl.fold (fun k _ ok -> ok && Hashtbl.mem tl.tl_keys k) fe.LP.fe_lines true
    && Hashtbl.fold (fun k _ ok -> ok && Hashtbl.mem tl.tl_calls k) fe.LP.fe_calls true
  in
  let anchors =
    if identity_ok then []
    else begin
      (* Callee-guid anchors, like the probe matcher but in key space. *)
      let push tbl k v =
        Hashtbl.replace tbl k (v :: Option.value (Hashtbl.find_opt tbl k) ~default:[])
      in
      let old_by = Hashtbl.create 8 in
      Hashtbl.iter
        (fun key targets ->
          match top_callee targets with Some (g, _) -> push old_by g key | None -> ())
        fe.LP.fe_calls;
      let new_by = Hashtbl.create 8 in
      Hashtbl.iter (fun key g -> push new_by g key) tl.tl_calls;
      let pairs = ref [] in
      Hashtbl.iter
        (fun g old_keys ->
          match Hashtbl.find_opt new_by g with
          | None -> ()
          | Some new_keys ->
              let rec zip a b =
                match (a, b) with
                | x :: a', y :: b' ->
                    pairs := (x, y) :: !pairs;
                    zip a' b'
                | _ -> ()
              in
              zip (List.sort compare old_keys) (List.sort compare new_keys))
        old_by;
      List.sort compare !pairs
    end
  in
  let map_line k =
    if identity_ok then Some k else map_key ~anchors ~valid:tl.tl_keys k
  in
  let map_call k =
    if identity_ok then Some k else map_key ~anchors ~valid:tl.tl_calls k
  in
  let recovered = ref 0L in
  let dropped = ref 0L in
  out.LP.fe_head <- Int64.add out.LP.fe_head fe.LP.fe_head;
  recovered := Int64.add !recovered fe.LP.fe_head;
  (* Sorted iteration: merged keys accumulate in a fixed order. *)
  let sorted_keys tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  List.iter
    (fun (k, c) ->
      match map_line k with
      | Some k' ->
          LP.add_line out k' c;
          recovered := Int64.add !recovered c
      | None -> dropped := Int64.add !dropped c)
    (sorted_keys fe.LP.fe_lines);
  List.iter
    (fun (k, targets) ->
      match map_call k with
      | None -> Hashtbl.iter (fun _ c -> dropped := Int64.add !dropped c) targets
      | Some k' ->
          List.iter
            (fun (g, c) ->
              if Option.is_some (Ir.Program.find_func_by_guid prog g) then begin
                LP.add_call out k' g c;
                recovered := Int64.add !recovered c
              end
              else dropped := Int64.add !dropped c)
            (sorted_keys targets))
    (sorted_keys fe.LP.fe_calls);
  { fm_exact = identity_ok && Int64.equal !dropped 0L;
    fm_recovered = !recovered;
    fm_dropped = !dropped }

let line_fentry_total (fe : LP.fentry) =
  let t = ref fe.LP.fe_head in
  Hashtbl.iter (fun _ c -> t := Int64.add !t c) fe.LP.fe_lines;
  Hashtbl.iter
    (fun _ targets -> Hashtbl.iter (fun _ c -> t := Int64.add !t c) targets)
    fe.LP.fe_calls;
  !t

let match_line ?obs ~target (prof : LP.t) =
  let out = LP.create () in
  let verdicts = ref [] in
  List.iter
    (fun g ->
      let fe = Ir.Guid.Tbl.find prof.LP.funcs g in
      let name = Option.value (Ir.Guid.Tbl.find_opt prof.LP.names g) ~default:"?" in
      let total = line_fentry_total fe in
      match Ir.Program.find_func_by_guid target g with
      | None ->
          verdicts :=
            { v_name = name; v_guid = g; v_status = Dropped; v_total_in = total;
              v_recovered = 0L; v_dropped = total }
            :: !verdicts
      | Some f ->
          let tl = line_info f in
          let ofe = LP.get_or_add out g ~name in
          let fm = match_line_fentry ~prog:target ~tl fe ofe in
          verdicts :=
            { v_name = name; v_guid = g;
              v_status =
                status_of ~present:true ~exact:fm.fm_exact ~recovered:fm.fm_recovered
                  ~dropped:fm.fm_dropped ~total;
              v_total_in = total; v_recovered = fm.fm_recovered;
              v_dropped = fm.fm_dropped }
            :: !verdicts)
    (sorted_guids prof.LP.funcs);
  (out, close_report ?obs !verdicts)

(* ------------------------------------------------------------------ *)
(* Context-trie matching.                                              *)
(* ------------------------------------------------------------------ *)

type facc = {
  fa_name : string;
  mutable fa_nodes : int;
  mutable fa_exact : int;
  mutable fa_dropped : int;
  mutable fa_total : int64;
  mutable fa_recovered : int64;
  mutable fa_dropped_counts : int64;
}

let match_ctx ?obs ~target (trie : CP.t) =
  let out = CP.create () in
  let faccs : facc Ir.Guid.Tbl.t = Ir.Guid.Tbl.create 32 in
  let facc_of g name =
    match Ir.Guid.Tbl.find_opt faccs g with
    | Some a -> a
    | None ->
        let a =
          { fa_name = name; fa_nodes = 0; fa_exact = 0; fa_dropped = 0;
            fa_total = 0L; fa_recovered = 0L; fa_dropped_counts = 0L }
        in
        Ir.Guid.Tbl.replace faccs g a;
        a
  in
  let record g name ~total ~recovered ~dropped ~node_status =
    let a = facc_of g name in
    a.fa_nodes <- a.fa_nodes + 1;
    (match node_status with
    | Exact -> a.fa_exact <- a.fa_exact + 1
    | Dropped -> a.fa_dropped <- a.fa_dropped + 1
    | Fuzzy -> ());
    a.fa_total <- Int64.add a.fa_total total;
    a.fa_recovered <- Int64.add a.fa_recovered recovered;
    a.fa_dropped_counts <- Int64.add a.fa_dropped_counts dropped
  in
  let sorted_children (n : CP.node) =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) n.CP.n_children []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* Account a whole unattachable subtree as dropped. *)
  let rec drop_subtree (n : CP.node) =
    let total = probe_fentry_total n.CP.n_prof in
    record n.CP.n_func n.CP.n_name ~total ~recovered:0L ~dropped:total
      ~node_status:Dropped;
    List.iter (fun (_, c) -> drop_subtree c) (sorted_children n)
  in
  (* [path_rev]: node_at path to the current node's attachment point in the
     matched trie, innermost last; spelled entirely in the *target* binary's
     guids, which diverge from the node's own when a rename was followed.
     [fn] is the target function the node lands on; [renamed] caps the node
     verdict at Fuzzy — rename recovery is inference, not identity. *)
  let rec walk (n : CP.node) ~(fn : Ir.Func.t) ~renamed ~path_rev =
    let tp = probe_info fn in
    let new_node =
      match path_rev with
      | [] -> CP.base out fn.Ir.Func.guid ~name:n.CP.n_name
      | path -> (
          match CP.node_at out ~path:(List.rev path) with
          | Some nd -> nd
          | None -> assert false (* non-empty path *))
    in
    let total = probe_fentry_total n.CP.n_prof in
    let fm = match_probe_fentry ~prog:target ~tp n.CP.n_prof new_node.CP.n_prof in
    if n.CP.n_inlined then new_node.CP.n_inlined <- true;
    let node_status =
      let s =
        status_of ~present:true ~exact:fm.fm_exact ~recovered:fm.fm_recovered
          ~dropped:fm.fm_dropped ~total
      in
      if renamed && s = Exact then Fuzzy else s
    in
    record n.CP.n_func n.CP.n_name ~total ~recovered:fm.fm_recovered
      ~dropped:fm.fm_dropped ~node_status;
    let map_site =
      if Int64.equal n.CP.n_prof.PP.fe_checksum 0L
         || Int64.equal n.CP.n_prof.PP.fe_checksum fn.Ir.Func.checksum
      then fun s -> if Hashtbl.mem tp.tp_sites s then Some s else None
      else
        (* The children's frame keys are callsite evidence in their own
           right: a node profile without callsite counts would otherwise
           leave the mapping anchorless and drop spellable chains. *)
        let extra =
          Hashtbl.fold
            (fun ((site, g) : CP.frame_key) _ acc -> (site, g) :: acc)
            n.CP.n_children []
        in
        site_mapping ~extra n.CP.n_prof tp
    in
    List.iter
      (fun (((site, child_guid) : CP.frame_key), (child : CP.node)) ->
        match map_site site with
        | None -> drop_subtree child
        | Some site' -> (
            match Ir.Program.find_func_by_guid target child_guid with
            | Some cf ->
                walk child ~fn:cf ~renamed
                  ~path_rev:
                    (((fn.Ir.Func.guid, site'), child_guid, child.CP.n_name)
                     :: path_rev)
            | None -> (
                (* The callee guid is gone, but the caller's callsite
                   survived the drift. If the new static callee at that
                   site has the same body checksum the node recorded, the
                   function was renamed, not replaced — follow it under
                   its new identity. Flat matching has no such anchor and
                   must drop renamed functions wholesale. *)
                match Hashtbl.find_opt tp.tp_sites site' with
                | Some g' -> (
                    match Ir.Program.find_func_by_guid target g' with
                    | Some cf
                      when (not (Int64.equal cf.Ir.Func.checksum 0L))
                           && Int64.equal child.CP.n_prof.PP.fe_checksum
                                cf.Ir.Func.checksum ->
                        walk child ~fn:cf ~renamed:true
                          ~path_rev:
                            (((fn.Ir.Func.guid, site'), g', cf.Ir.Func.name)
                             :: path_rev)
                    | _ -> drop_subtree child)
                | None -> drop_subtree child)))
      (sorted_children n)
  in
  let roots =
    Ir.Guid.Tbl.fold (fun g n acc -> (g, n) :: acc) trie.CP.roots []
    |> List.sort (fun (a, _) (b, _) -> Ir.Guid.compare a b)
  in
  List.iter
    (fun (_, n) ->
      match Ir.Program.find_func_by_guid target n.CP.n_func with
      | None -> drop_subtree n
      | Some f -> walk n ~fn:f ~renamed:false ~path_rev:[])
    roots;
  let verdicts =
    Ir.Guid.Tbl.fold
      (fun g a acc ->
        let status =
          if a.fa_exact = a.fa_nodes then Exact
          else if a.fa_dropped = a.fa_nodes then Dropped
          else Fuzzy
        in
        { v_name = a.fa_name; v_guid = g; v_status = status; v_total_in = a.fa_total;
          v_recovered = a.fa_recovered; v_dropped = a.fa_dropped_counts }
        :: acc)
      faccs []
  in
  (out, close_report ?obs verdicts)
