module Ir = Csspgo_ir
module Fnv = Csspgo_support.Fnv
module Frontend = Csspgo_frontend
module Opt = Csspgo_opt
module Cg = Csspgo_codegen
module Vm = Csspgo_vm
module P = Csspgo_profile
module Pg = Csspgo_profgen
module Obs = Csspgo_obs

type run_spec = {
  rs_args : int64 list;
  rs_globals : (string * int64 array) list;
}

type workload = {
  w_name : string;
  w_source : string;
  w_entry : string;
  w_train : run_spec list;
  w_eval : run_spec list;
}

type variant = Nopgo | Instr_pgo | Autofdo | Csspgo_probe_only | Csspgo_full

let variant_name = function
  | Nopgo -> "no-pgo"
  | Instr_pgo -> "instr-pgo"
  | Autofdo -> "autofdo"
  | Csspgo_probe_only -> "csspgo-probe-only"
  | Csspgo_full -> "csspgo"

type options = {
  pmu : Vm.Machine.pmu;
  opt_profiling : Opt.Config.t;
  opt_final : Opt.Config.t;
  emit_opts : Cg.Emit.options;
  trim_threshold : int64;
  preinline : Preinliner.config option;
  use_missing_frame_inference : bool;
}

let default_options =
  {
    pmu = { Vm.Machine.default_pmu with sample_period = 1009 };
    opt_profiling = Opt.Config.o2_nopgo;
    opt_final = Opt.Config.o2;
    emit_opts = Cg.Emit.default_options;
    trim_threshold = 8L;
    preinline = Some Preinliner.default_config;
    use_missing_frame_inference = true;
  }

type eval = {
  ev_cycles : int64;
  ev_instructions : int64;
  ev_icache_misses : int64;
  ev_taken_branches : int64;
}

type outcome = {
  o_variant : variant;
  o_eval : eval;
  o_text_size : int;
  o_debug_size : int;
  o_probe_meta_size : int;
  o_profiling_cycles : int64;
  o_annotated : Ir.Program.t;
  o_stales : Annotate.stale list;
  o_recon_stats : Ctx_reconstruct.stats option;
  o_preinline_decisions : Preinliner.decision list;
  o_binary : Cg.Mach.binary;
  o_profile_size : int;
  o_stale_report : Stale_match.report option;
}

let compile (w : workload) = Frontend.Lower.compile w.w_source

(* Reference program carrying pseudo-probe checksums and symbol names. *)
let reference (w : workload) =
  let p = compile w in
  Pseudo_probe.insert p;
  p

type runs = {
  r_samples : Vm.Machine.sample list;
  r_n_samples : int;
  r_cycles : int64;
  r_instrs : int64;
  r_imiss : int64;
  r_branches : int64;
  r_counters : int64 array option;
  r_values : (int, (int64, int64) Hashtbl.t) Hashtbl.t;
}

let run_specs ?(pmu = None) ?sink ?debug_poison ?obs (bin : Cg.Mach.binary) ~entry specs =
  (* Collect mode accumulates newest-first and reverses once at the end;
     the old [acc @ r.samples] was quadratic in the number of runs. *)
  let acc =
    List.fold_left
      (fun acc spec ->
        let r =
          Vm.Machine.run ~pmu ?sink ?debug_poison ?obs ~globals_init:spec.rs_globals
            ~args:spec.rs_args bin ~entry
        in
        let counters =
          match acc.r_counters with
          | None -> Some r.Vm.Machine.counters
          | Some cs ->
              Array.iteri
                (fun i c -> if i < Array.length cs then cs.(i) <- Int64.add cs.(i) c)
                r.Vm.Machine.counters;
              Some cs
        in
        Hashtbl.iter
          (fun site hist ->
            let dst =
              match Hashtbl.find_opt acc.r_values site with
              | Some dst -> dst
              | None ->
                  let dst = Hashtbl.create 8 in
                  Hashtbl.replace acc.r_values site dst;
                  dst
            in
            Hashtbl.iter
              (fun v c ->
                Hashtbl.replace dst v
                  (Int64.add c (Option.value (Hashtbl.find_opt dst v) ~default:0L)))
              hist)
          r.Vm.Machine.value_profiles;
        {
          acc with
          r_samples = List.rev_append r.Vm.Machine.samples acc.r_samples;
          r_n_samples = acc.r_n_samples + r.Vm.Machine.n_samples;
          r_cycles = Int64.add acc.r_cycles r.Vm.Machine.cycles;
          r_instrs = Int64.add acc.r_instrs r.Vm.Machine.instructions;
          r_imiss = Int64.add acc.r_imiss r.Vm.Machine.icache_misses;
          r_branches = Int64.add acc.r_branches r.Vm.Machine.taken_branches;
          r_counters = counters;
        })
      {
        r_samples = [];
        r_n_samples = 0;
        r_cycles = 0L;
        r_instrs = 0L;
        r_imiss = 0L;
        r_branches = 0L;
        r_counters = None;
        r_values = Hashtbl.create 8;
      }
      specs
  in
  { acc with r_samples = List.rev acc.r_samples }

let evaluate_opts (bin : Cg.Mach.binary) (w : workload) =
  let r = run_specs ~pmu:None bin ~entry:w.w_entry w.w_eval in
  {
    ev_cycles = r.r_cycles;
    ev_instructions = r.r_instrs;
    ev_icache_misses = r.r_imiss;
    ev_taken_branches = r.r_branches;
  }

let evaluate bin w = evaluate_opts bin w

(* ------------------------------------------------------------------ *)
(* Staged build plans: the supported surface for running variants.     *)

module Plan = struct
  type compile_spec = { c_source : string; c_probes : bool }
  type instrument_spec = { i_counters : bool; i_values : bool }

  type profile_run_spec = {
    p_config : Opt.Config.t;
    p_emit : Cg.Emit.options;
    p_pmu : Vm.Machine.pmu option;
    p_entry : string;
    p_train : run_spec list;
  }

  type correlator =
    | Corr_lines
    | Corr_probes
    | Corr_ctx of { cc_missing_frames : bool; cc_trim_threshold : int64 }
    | Corr_counters of { cn_min_count : int64; cn_min_ratio : float }

  type correlate_spec = { x_correlator : correlator }
  type preinline_spec = { pi_config : Preinliner.config option }

  type rebuild_spec = {
    r_probes : bool;
    r_prepass : Opt.Config.t option;
    r_config : Opt.Config.t;
    r_emit : Cg.Emit.options;
  }

  type evaluate_spec = { e_entry : string; e_eval : run_spec list }

  type stale_spec = { st_source : string; st_probes : bool }
  type use_spec = { u_text : string; u_flat_text : string option }

  type stage =
    | Compile of compile_spec
    | Instrument of instrument_spec
    | Profile_run of profile_run_spec
    | Correlate of correlate_spec
    | Use_profile of use_spec
    | Stale_apply of stale_spec
    | Preinline of preinline_spec
    | Rebuild of rebuild_spec
    | Evaluate of evaluate_spec

  type t = {
    pl_variant : variant;
    pl_workload : workload;
    pl_options : options;
    pl_stages : stage list;
  }

  let make ?(options = default_options) ~variant (w : workload) =
    let compile ~probes = Compile { c_source = w.w_source; c_probes = probes } in
    let profile_run ~pmu =
      Profile_run
        {
          p_config = options.opt_profiling;
          p_emit = options.emit_opts;
          p_pmu = pmu;
          p_entry = w.w_entry;
          p_train = w.w_train;
        }
    in
    let rebuild ~probes ~prepass =
      Rebuild
        {
          r_probes = probes;
          r_prepass = prepass;
          r_config = options.opt_final;
          r_emit = options.emit_opts;
        }
    in
    let evaluate = Evaluate { e_entry = w.w_entry; e_eval = w.w_eval } in
    let stages =
      match variant with
      | Nopgo ->
          [ rebuild ~probes:false ~prepass:(Some options.opt_profiling); evaluate ]
      | Autofdo ->
          [
            compile ~probes:false;
            profile_run ~pmu:(Some options.pmu);
            Correlate { x_correlator = Corr_lines };
            rebuild ~probes:false ~prepass:None;
            evaluate;
          ]
      | Csspgo_probe_only ->
          [
            compile ~probes:true;
            profile_run ~pmu:(Some options.pmu);
            Correlate { x_correlator = Corr_probes };
            rebuild ~probes:true ~prepass:None;
            evaluate;
          ]
      | Csspgo_full ->
          [
            compile ~probes:true;
            profile_run ~pmu:(Some options.pmu);
            Correlate
              {
                x_correlator =
                  Corr_ctx
                    {
                      cc_missing_frames = options.use_missing_frame_inference;
                      cc_trim_threshold = options.trim_threshold;
                    };
              };
            Preinline { pi_config = options.preinline };
            rebuild ~probes:true ~prepass:None;
            evaluate;
          ]
      | Instr_pgo ->
          [
            compile ~probes:false;
            Instrument { i_counters = true; i_values = true };
            profile_run ~pmu:None;
            Correlate
              {
                x_correlator =
                  Corr_counters { cn_min_count = 5000L; cn_min_ratio = 0.90 };
              };
            rebuild ~probes:false ~prepass:None;
            evaluate;
          ]
    in
    { pl_variant = variant; pl_workload = w; pl_options = options; pl_stages = stages }

  (* The stale-profile plan: profile build N (the workload source), then
     rebuild build N+1 ([stale_source]) against the matched profile. The
     matcher runs between correlation and pre-inlining so the pre-inliner
     decides on the trie the new build will actually replay. *)
  let make_stale ?(options = default_options) ~variant ~stale_source (w : workload) =
    (match variant with
    | Nopgo | Instr_pgo ->
        invalid_arg "Plan.make_stale: only sampling variants can go stale"
    | Autofdo | Csspgo_probe_only | Csspgo_full -> ());
    let base = make ~options ~variant w in
    let probes =
      match variant with Csspgo_probe_only | Csspgo_full -> true | _ -> false
    in
    let stages =
      List.concat_map
        (function
          | Correlate _ as st ->
              [ st; Stale_apply { st_source = stale_source; st_probes = probes } ]
          | st -> [ st ])
        base.pl_stages
    in
    { base with pl_stages = stages }

  (* Profile-injection plans: rebuild [w.w_source] against an externally
     produced (fleet-merged, train-carried) profile. The profile shape
     picks the variant so caching, annotation and quality accounting all
     behave exactly as the sampled equivalent would. *)
  let make_with_profile ?(options = default_options) ~profile ?flat (w : workload) =
    let kind = P.Text_io.kind_of profile in
    let variant =
      match kind with
      | P.Text_io.Line -> Autofdo
      | P.Text_io.Probe -> Csspgo_probe_only
      | P.Text_io.Ctx -> Csspgo_full
    in
    let probes = match kind with P.Text_io.Line -> false | _ -> true in
    let use =
      Use_profile
        {
          u_text = P.Text_io.to_string profile;
          u_flat_text =
            Option.map (fun f -> P.Text_io.to_string (P.Text_io.Probe_prof f)) flat;
        }
    in
    let rebuild =
      Rebuild
        {
          r_probes = probes;
          r_prepass = None;
          r_config = options.opt_final;
          r_emit = options.emit_opts;
        }
    in
    let evaluate = Evaluate { e_entry = w.w_entry; e_eval = w.w_eval } in
    let stages =
      match kind with
      | P.Text_io.Ctx -> [ use; Preinline { pi_config = options.preinline }; rebuild; evaluate ]
      | _ -> [ use; rebuild; evaluate ]
    in
    { pl_variant = variant; pl_workload = w; pl_options = options; pl_stages = stages }

  type hooks = {
    memo :
      'a.
      kind:string ->
      key:string list ->
      ser:('a -> string) ->
      de:(string -> 'a) ->
      (unit -> 'a) ->
      'a;
    stat : name:string -> int -> unit;
    span : 'a. name:string -> (unit -> 'a) -> 'a;
    metrics : Obs.Metrics.t;
    jobs : int;
  }

  let default_hooks =
    {
      memo = (fun ~kind:_ ~key:_ ~ser:_ ~de:_ f -> f ());
      stat = (fun ~name:_ _ -> ());
      span = (fun ~name:_ f -> f ());
      metrics = Obs.Metrics.null;
      jobs = 1;
    }

  let stage_name = function
    | Compile _ -> "compile"
    | Instrument _ -> "instrument"
    | Profile_run _ -> "profile-run"
    | Correlate _ -> "correlate"
    | Use_profile _ -> "use-profile"
    | Stale_apply _ -> "stale-apply"
    | Preinline _ -> "preinline"
    | Rebuild _ -> "rebuild"
    | Evaluate _ -> "evaluate"

  (* Rough serialized-size estimates (one row per entry), shared by the
     Correlate and Use_profile stages. *)
  let line_profile_size (lp : P.Line_profile.t) =
    Ir.Guid.Tbl.fold
      (fun _ fe acc ->
        acc + 24
        + (12 * Hashtbl.length fe.P.Line_profile.fe_lines)
        + (18 * Hashtbl.length fe.P.Line_profile.fe_calls))
      lp.P.Line_profile.funcs 0

  let probe_profile_size (pp : P.Probe_profile.t) =
    Ir.Guid.Tbl.fold
      (fun _ fe acc ->
        acc + 24
        + (10 * Hashtbl.length fe.P.Probe_profile.fe_probes)
        + (18 * Hashtbl.length fe.P.Probe_profile.fe_calls))
      pp.P.Probe_profile.funcs 0

  (* Fingerprints for cache keys: FNV-1a over the Marshal image of a spec.
     Every spec type is a closure-free record, so this is total. *)
  let fp_string s = Printf.sprintf "%Lx" (Fnv.hash_string s)
  let fp v = fp_string (Marshal.to_string v [])
  let mser v = Marshal.to_string v []
  let mde s = Marshal.from_string s 0

  type instrumentation = { in_map : Instrument.t; in_vals : Instrument.values }

  (* The raw sample list is gone: the profiling run streams every sample
     through a tee sink into (a) the range/branch aggregate, (b) the
     missing-frame tail-call table, and (c) a compact flat-int log that
     context reconstruction replays once the missing table is complete.
     Peak live memory is the aggregate + log words, not boxed samples. *)
  type profile_run_out = {
    pr_bin : Cg.Mach.binary;
    pr_agg : Pg.Ranges.agg;
    pr_missing : Missing_frame.t option;  (* present when the PMU sampled *)
    pr_log : Vm.Sample_log.t;
    pr_n_samples : int;
    pr_cycles : int64;
    pr_counters : int64 array option;
    pr_values : (int, (int64, int64) Hashtbl.t) Hashtbl.t;
    pr_instr : instrumentation option;
  }

  type ref_info = {
    ri_names : string Ir.Guid.Tbl.t;
    ri_checksums : int64 Ir.Guid.Tbl.t;
  }

  type profile_data =
    | Prof_lines of P.Line_profile.t
    | Prof_probes of P.Probe_profile.t
    | Prof_ctx of { x_trie : P.Ctx_profile.t; x_flat : P.Probe_profile.t }
    | Prof_counters of {
        x_counts : (Ir.Guid.t * Ir.Types.label, int64) Hashtbl.t;
        x_dominant : (Instrument.vsite_key, int64) Hashtbl.t;
      }

  let run ?(hooks = default_hooks) (plan : t) =
    let w = plan.pl_workload in
    let src_fp = fp_string w.w_source in
    (* Reference program symbol names and pseudo-probe CFG checksums, shared
       by every correlator of this workload. Memoized under the source hash:
       identical sources across variants (and fuzz seeds) hit. *)
    let ref_info_cell = ref None in
    let ref_info () =
      match !ref_info_cell with
      | Some ri -> ri
      | None ->
          let ri =
            hooks.memo ~kind:"ref-info" ~key:[ src_fp ] ~ser:mser ~de:mde (fun () ->
                let refp = reference w in
                let names = Ir.Guid.Tbl.create 64 in
                let checksums = Ir.Guid.Tbl.create 64 in
                Ir.Program.iter_funcs
                  (fun f ->
                    Ir.Guid.Tbl.replace names f.Ir.Func.guid f.Ir.Func.name;
                    Ir.Guid.Tbl.replace checksums f.Ir.Func.guid f.Ir.Func.checksum)
                  refp;
                { ri_names = names; ri_checksums = checksums })
          in
          ref_info_cell := Some ri;
          ri
    in
    let name_of g = Ir.Guid.Tbl.find_opt (ref_info ()).ri_names g in
    let checksum_of g =
      Option.value (Ir.Guid.Tbl.find_opt (ref_info ()).ri_checksums g) ~default:0L
    in
    (* Probe/function checksums are first-class cache-key material: any CFG
       drift in the reference invalidates correlated profiles derived from
       it, so a stale cache degrades to recorrelation, never to wrong data. *)
    let checksum_digest () =
      let ri = ref_info () in
      Ir.Guid.Tbl.fold (fun g c acc -> (g, c) :: acc) ri.ri_checksums []
      |> List.sort compare
      |> List.fold_left (fun acc (g, c) -> Fnv.int64 (Fnv.int64 acc g) c) Fnv.init
      |> Printf.sprintf "%Lx"
    in
    let compile_spec = ref None in
    let instr_spec = ref None in
    let prof = ref None in
    let prof_key = ref [] in
    let profile = ref None in
    let profile_ser = ref "" in
    let profile_size = ref 0 in
    let recon = ref None in
    let decisions = ref [] in
    let stales = ref [] in
    (* Source the final build compiles; Stale_apply retargets it at the
       drifted "version N+1" while the profile stays from version N. *)
    let rebuild_source = ref w.w_source in
    let stale_report = ref None in
    let annotated = ref None in
    let final = ref None in
    let final_key = ref [] in
    let eval_out = ref None in
    let exec = function
      | Compile cs -> compile_spec := Some cs
      | Instrument is -> instr_spec := Some is
      | Profile_run ps ->
          (* "stream-v2": [profile_run_out] changed shape (aggregates + log
             instead of a sample list); the version element keeps stale
             marshaled cache entries from being unsafely decoded. *)
          let key = [ "stream-v2"; src_fp; fp !compile_spec; fp !instr_spec; fp ps ] in
          prof_key := key;
          let out =
            hooks.memo ~kind:"profile-run" ~key ~ser:mser ~de:mde (fun () ->
                let cs =
                  match !compile_spec with
                  | Some cs -> cs
                  | None -> invalid_arg "Plan.run: Profile_run before Compile"
                in
                let prog = Frontend.Lower.compile cs.c_source in
                if cs.c_probes then Pseudo_probe.insert prog;
                let instr =
                  match !instr_spec with
                  | None -> None
                  | Some is ->
                      let im =
                        if is.i_counters then Instrument.instrument prog
                        else { Instrument.counter_of = Hashtbl.create 1; n_counters = 0 }
                      in
                      let vals =
                        if is.i_values then Instrument.instrument_values prog
                        else { Instrument.site_of = Hashtbl.create 1; n_sites = 0 }
                      in
                      Some { in_map = im; in_vals = vals }
                in
                Opt.Pass.optimize ~config:ps.p_config prog;
                let bin = Cg.Emit.emit ~options:ps.p_emit prog in
                let agg = Pg.Ranges.create () in
                let log = Vm.Sample_log.create () in
                let mb =
                  match ps.p_pmu with
                  | Some _ ->
                      Some
                        (Missing_frame.start ~obs:hooks.metrics (Pg.Bindex.create bin))
                  | None -> None
                in
                let sink =
                  {
                    Vm.Machine.on_sample =
                      (fun ~lbr ~lbr_len ~stack ~stack_len ->
                        Pg.Ranges.feed agg ~lbr ~lbr_len;
                        (match mb with
                        | Some mb -> Missing_frame.feed mb ~lbr ~lbr_len
                        | None -> ());
                        Vm.Sample_log.add log ~lbr ~lbr_len ~stack ~stack_len);
                    on_labels = Vm.Sample_log.set_label log;
                  }
                in
                let r =
                  run_specs ~pmu:ps.p_pmu ~sink ~obs:hooks.metrics bin ~entry:ps.p_entry
                    ps.p_train
                in
                Vm.Sample_log.compact log;
                {
                  pr_bin = bin;
                  pr_agg = agg;
                  pr_missing = Option.map Missing_frame.finish mb;
                  pr_log = log;
                  pr_n_samples = r.r_n_samples;
                  pr_cycles = r.r_cycles;
                  pr_counters = r.r_counters;
                  pr_values = r.r_values;
                  pr_instr = instr;
                })
          in
          hooks.stat ~name:"profile-run.samples" out.pr_n_samples;
          hooks.stat ~name:"profile-run.log-words" (Vm.Sample_log.words out.pr_log);
          prof := Some out
      | Correlate { x_correlator } ->
          let po =
            match !prof with
            | Some po -> po
            | None -> invalid_arg "Plan.run: Correlate before Profile_run"
          in
          (* Dense per-binary index for the streaming correlators; built
             once per Correlate stage, shared by every consumer below. *)
          let index = lazy (Pg.Bindex.create po.pr_bin) in
          (* Correlated profiles cache as canonical Text_io dumps; the memo
             thunk also hands back the freshly built value so the cache-off
             path never round-trips through text. *)
          let memo_profile ~tag ~kind_p build =
            let built = ref None in
            let text =
              hooks.memo ~kind:"correlate"
                ~key:(!prof_key @ [ tag; checksum_digest () ])
                ~ser:Fun.id ~de:Fun.id
                (fun () ->
                  let p = build () in
                  built := Some p;
                  P.Text_io.to_string p)
            in
            let p = match !built with Some p -> p | None -> P.Text_io.read kind_p text in
            (p, text)
          in
          (* Probe-level (context-merged) correlation, shared between
             [Corr_probes] and the flat quality baseline of [Corr_ctx]. *)
          let probe_flat () =
            match
              memo_profile ~tag:"probes" ~kind_p:P.Text_io.Probe (fun () ->
                  P.Text_io.Probe_prof
                    (Probe_corr.correlate_agg ~name_of ~index:(Lazy.force index)
                       ~checksum_of ~obs:hooks.metrics po.pr_bin po.pr_agg))
            with
            | P.Text_io.Probe_prof pp, text -> (pp, text)
            | _ -> assert false
          in
          (match x_correlator with
          | Corr_lines ->
              let lp, text =
                match
                  memo_profile ~tag:"lines" ~kind_p:P.Text_io.Line (fun () ->
                      P.Text_io.Line_prof
                        (Pg.Dwarf_corr.correlate_agg ~name_of ~index:(Lazy.force index)
                           ~obs:hooks.metrics po.pr_bin po.pr_agg))
                with
                | P.Text_io.Line_prof lp, text -> (lp, text)
                | _ -> assert false
              in
              profile := Some (Prof_lines lp);
              profile_ser := text;
              profile_size := line_profile_size lp
          | Corr_probes ->
              let pp, text = probe_flat () in
              profile := Some (Prof_probes pp);
              profile_ser := text;
              profile_size := probe_profile_size pp
          | Corr_ctx { cc_missing_frames; cc_trim_threshold } ->
              let built = ref None in
              let text, stats =
                hooks.memo ~kind:"correlate"
                  ~key:
                    (!prof_key
                    @ [ "ctx"; fp (cc_missing_frames, cc_trim_threshold); checksum_digest () ])
                  ~ser:mser ~de:mde
                  (fun () ->
                    (* The tail-call table was built online during the
                       profiling run; reconstruction replays the compact
                       log against it (Algorithm 1 needs the complete table
                       before the first sample is attributed). With
                       [hooks.jobs > 1] the replay shards on chunk
                       boundaries and reduces under the Merge laws — the
                       sharded result is byte-identical to serial, so the
                       memo key above deliberately excludes the job
                       count. *)
                    let missing = if cc_missing_frames then po.pr_missing else None in
                    let trie, stats =
                      if hooks.jobs > 1 then
                        Par_corr.reconstruct ~name_of ?missing ~checksum_of
                          ~obs:hooks.metrics ~metrics:hooks.metrics
                          ~jobs:hooks.jobs (Lazy.force index)
                          (Par_corr.shards_of_log po.pr_log)
                      else begin
                        let st =
                          Ctx_reconstruct.start ~name_of ?missing ~checksum_of
                            ~obs:hooks.metrics (Lazy.force index)
                        in
                        Vm.Sample_log.iter po.pr_log
                          (fun ~lbr ~lbr_len ~stack ~stack_len ->
                            Ctx_reconstruct.feed st ~lbr ~lbr_len ~stack ~stack_len);
                        Ctx_reconstruct.finish st
                      end
                    in
                    if Int64.compare cc_trim_threshold 0L > 0 then
                      ignore (P.Ctx_profile.trim_cold trie ~threshold:cc_trim_threshold);
                    built := Some trie;
                    (P.Text_io.to_string (P.Text_io.Ctx_prof trie), stats))
              in
              let trie =
                match !built with
                | Some trie -> trie
                | None -> (
                    match P.Text_io.read P.Text_io.Ctx text with
                    | P.Text_io.Ctx_prof trie -> trie
                    | _ -> assert false)
              in
              let flat, _ = probe_flat () in
              (* Reconstruction stats fire through the hook even on cache
                 hits — they are part of the memoized value, so the numbers
                 a warm run reports match the cold run that built it. *)
              hooks.stat ~name:"correlate.recon-samples" stats.Ctx_reconstruct.st_samples;
              hooks.stat ~name:"correlate.recon-dropped"
                stats.Ctx_reconstruct.st_dropped_misaligned;
              hooks.stat ~name:"correlate.gaps-resolved"
                stats.Ctx_reconstruct.st_gaps_resolved;
              hooks.stat ~name:"correlate.gaps-failed"
                stats.Ctx_reconstruct.st_gaps_failed;
              recon := Some stats;
              profile := Some (Prof_ctx { x_trie = trie; x_flat = flat });
              profile_ser := text (* refreshed after Preinline *)
          | Corr_counters { cn_min_count; cn_min_ratio } ->
              let inst =
                match po.pr_instr with
                | Some i -> i
                | None -> invalid_arg "Plan.run: Corr_counters without Instrument"
              in
              let v =
                hooks.memo ~kind:"correlate"
                  ~key:(!prof_key @ [ "counters"; fp (cn_min_count, cn_min_ratio) ])
                  ~ser:mser ~de:mde
                  (fun () ->
                    let counts =
                      Instrument.block_counts inst.in_map
                        (Option.value po.pr_counters
                           ~default:(Array.make inst.in_map.Instrument.n_counters 0L))
                    in
                    let dominant =
                      Instrument.dominant_values inst.in_vals po.pr_values
                        ~min_count:cn_min_count ~min_ratio:cn_min_ratio
                    in
                    (counts, dominant))
              in
              let counts, dominant = v in
              profile := Some (Prof_counters { x_counts = counts; x_dominant = dominant });
              profile_ser := mser v;
              profile_size := 8 * inst.in_map.Instrument.n_counters);
          hooks.stat ~name:"correlate.profile-bytes" (String.length !profile_ser)
      | Use_profile us ->
          (* Adopt an externally merged profile as this plan's correlated
             profile. The text is already canonical, so it doubles as the
             serialized form the caches key on. *)
          (match P.Text_io.of_string us.u_text with
          | P.Text_io.Line_prof lp ->
              profile := Some (Prof_lines lp);
              profile_size := line_profile_size lp
          | P.Text_io.Probe_prof pp ->
              profile := Some (Prof_probes pp);
              profile_size := probe_profile_size pp
          | P.Text_io.Ctx_prof trie ->
              let flat =
                match us.u_flat_text with
                | Some t -> (
                    match P.Text_io.read P.Text_io.Probe t with
                    | P.Text_io.Probe_prof pp -> pp
                    | _ -> assert false)
                | None -> P.Merge.flatten_ctx trie
              in
              profile := Some (Prof_ctx { x_trie = trie; x_flat = flat });
              profile_size := P.Ctx_profile.size_bytes trie);
          profile_ser := us.u_text;
          hooks.stat ~name:"correlate.profile-bytes" (String.length !profile_ser)
      | Stale_apply ss ->
          (* The match target is the *pre-optimization* IR of the new build,
             probed for the probe variants so checksums and callsite ids
             exist to anchor on. *)
          let target = Frontend.Lower.compile ss.st_source in
          if ss.st_probes then Pseudo_probe.insert target;
          let rep =
            match !profile with
            | Some (Prof_lines lp) ->
                let lp', rep = Stale_match.match_line ~obs:hooks.metrics ~target lp in
                profile := Some (Prof_lines lp');
                profile_ser := P.Text_io.to_string (P.Text_io.Line_prof lp');
                rep
            | Some (Prof_probes pp) ->
                let pp', rep = Stale_match.match_probe ~obs:hooks.metrics ~target pp in
                profile := Some (Prof_probes pp');
                profile_ser := P.Text_io.to_string (P.Text_io.Probe_prof pp');
                rep
            | Some (Prof_ctx { x_trie; x_flat }) ->
                let trie', rep = Stale_match.match_ctx ~obs:hooks.metrics ~target x_trie in
                (* The flat quality baseline must survive the same drift; its
                   verdicts would double-count the trie's, so no obs here. *)
                let flat', _ = Stale_match.match_probe ~target x_flat in
                profile := Some (Prof_ctx { x_trie = trie'; x_flat = flat' });
                profile_ser := P.Text_io.to_string (P.Text_io.Ctx_prof trie');
                rep
            | Some (Prof_counters _) | None ->
                invalid_arg "Plan.run: Stale_apply requires a correlated sampling profile"
          in
          stale_report := Some rep;
          rebuild_source := ss.st_source;
          hooks.stat ~name:"stale.counts-recovered"
            (Int64.to_int rep.Stale_match.r_recovered);
          hooks.stat ~name:"stale.counts-dropped"
            (Int64.to_int rep.Stale_match.r_dropped_counts)
      | Preinline { pi_config } -> (
          match !profile with
          | Some (Prof_ctx { x_trie; _ }) ->
              (match pi_config with
              | Some cfg ->
                  let sizes =
                    match !prof with
                    | Some po -> Size_extract.compute po.pr_bin
                    | None ->
                        (* Injected-profile plan (Use_profile): no profiling
                           binary in this plan. Rebuild the probed
                           profiling-shape binary of the rebuild source —
                           the shape fleet instances were sampling — for
                           the inline cost extraction. *)
                        hooks.memo ~kind:"preinline-sizes"
                          ~key:
                            [
                              fp_string !rebuild_source;
                              fp (plan.pl_options.opt_profiling, plan.pl_options.emit_opts);
                            ]
                          ~ser:mser ~de:mde
                          (fun () ->
                            let prog = Frontend.Lower.compile !rebuild_source in
                            Pseudo_probe.insert prog;
                            Opt.Pass.optimize ~config:plan.pl_options.opt_profiling prog;
                            Size_extract.compute
                              (Cg.Emit.emit ~options:plan.pl_options.emit_opts prog))
                  in
                  decisions := Preinliner.run ~config:cfg x_trie sizes
              | None ->
                  (* Without the pre-inliner every context merges into base. *)
                  ignore (P.Ctx_profile.trim_cold x_trie ~threshold:Int64.max_int);
                  decisions := []);
              profile_size := P.Ctx_profile.size_bytes x_trie;
              profile_ser := P.Text_io.to_string (P.Text_io.Ctx_prof x_trie)
          | _ -> () (* no context trie: nothing to pre-inline *))
      | Rebuild rs ->
          let prog = Frontend.Lower.compile !rebuild_source in
          if rs.r_probes then Pseudo_probe.insert prog;
          (match rs.r_prepass with
          | Some config -> Opt.Pass.optimize ~config prog
          | None -> ());
          (match !profile with
          | None -> ()
          | Some (Prof_lines lp) -> Annotate.lines lp prog
          | Some (Prof_probes pp) -> stales := Annotate.probes pp prog
          | Some (Prof_ctx { x_trie; _ }) -> stales := Annotate.ctx x_trie prog
          | Some (Prof_counters { x_counts; x_dominant }) ->
              Annotate.exact x_counts prog;
              (* Value-profile-guided divisor specialization:
                 instrumentation-only. *)
              ignore (Value_spec.apply prog x_dominant));
          (* The annotated pre-opt IR doubles as the quality oracle. For
             context profiles it must share the truth CFG, so it cannot be
             the replayed (inlined) IR: annotate a fresh copy with the flat
             (context-merged) probe profile from the same samples — the same
             correlation mechanism Table I's "CSSPGO" row measures. *)
          (match !profile with
          | Some (Prof_ctx { x_flat; _ }) ->
              let qp = Frontend.Lower.compile !rebuild_source in
              Pseudo_probe.insert qp;
              ignore (Annotate.probes x_flat qp);
              annotated := Some qp
          | _ -> annotated := Some (Ir.Program.copy prog));
          (* Key the whole-binary cache on the merged per-function profile
             fingerprint where one exists: equal fingerprints mean no
             function drifted, so a rebuild against a refreshed-but-equal
             profile reuses the cached artifact outright (0 recompiles).
             Exact counter profiles keep the raw text hash. *)
          let profile_fp =
            match !profile with
            | Some (Prof_lines lp) ->
                Printf.sprintf "pfp:%Lx" (P.Fingerprint.merged (P.Text_io.Line_prof lp))
            | Some (Prof_probes pp) ->
                Printf.sprintf "pfp:%Lx" (P.Fingerprint.merged (P.Text_io.Probe_prof pp))
            | Some (Prof_ctx { x_trie; _ }) ->
                Printf.sprintf "pfp:%Lx" (P.Fingerprint.merged (P.Text_io.Ctx_prof x_trie))
            | Some (Prof_counters _) | None -> fp_string !profile_ser
          in
          let key = [ fp_string !rebuild_source; fp rs; profile_fp ] in
          final_key := key;
          let bin =
            hooks.memo ~kind:"final-build" ~key ~ser:mser ~de:mde (fun () ->
                (* The whole-binary entry missed: the profile (or source)
                   drifted. Run the program-level pipeline prefix, then
                   recompile per function through a second-level cache
                   keyed on each function's post-inline annotated image —
                   functions the drift did not reach digest identically
                   and splice their cached optimized bodies back in. *)
                let config = rs.r_config in
                if Opt.Pass.prepare ~config prog then begin
                  let steps = Opt.Pass.steps_of_config config in
                  let pipeline_fp = fp (config, steps) in
                  let recompiled = ref 0 and reused = ref 0 in
                  Ir.Program.iter_funcs
                    (fun f ->
                      let fkey =
                        [
                          "fv1";
                          pipeline_fp;
                          Printf.sprintf "%Lx" f.Ir.Func.guid;
                          Printf.sprintf "%Lx" (Ir.Func.digest f);
                        ]
                      in
                      let fresh = ref false in
                      let f' =
                        hooks.memo ~kind:"func-opt" ~key:fkey ~ser:mser ~de:mde
                          (fun () ->
                            fresh := true;
                            Opt.Pass.optimize_func_with ~config ~steps ~program:prog f;
                            f)
                      in
                      if !fresh then incr recompiled
                      else begin
                        incr reused;
                        Ir.Program.add_func prog f'
                      end)
                    prog;
                  hooks.stat ~name:"rebuild.funcs-recompiled" !recompiled;
                  hooks.stat ~name:"rebuild.funcs-reused" !reused;
                  if config.Opt.Config.verify_between_passes then begin
                    match Ir.Verify.program prog with
                    | [] -> ()
                    | errs ->
                        failwith
                          (Format.asprintf "@[<v>after incremental pipeline:@ %a@]"
                             (Format.pp_print_list Ir.Verify.pp_error)
                             errs)
                  end
                end;
                Cg.Emit.emit ~options:rs.r_emit prog)
          in
          final := Some bin
      | Evaluate es ->
          let bin =
            match !final with
            | Some bin -> bin
            | None -> invalid_arg "Plan.run: Evaluate before Rebuild"
          in
          let ev =
            hooks.memo ~kind:"evaluate" ~key:(!final_key @ [ fp es ]) ~ser:mser ~de:mde
              (fun () ->
                let r =
                  run_specs ~pmu:None ~obs:hooks.metrics bin ~entry:es.e_entry es.e_eval
                in
                {
                  ev_cycles = r.r_cycles;
                  ev_instructions = r.r_instrs;
                  ev_icache_misses = r.r_imiss;
                  ev_taken_branches = r.r_branches;
                })
          in
          eval_out := Some ev
    in
    List.iter
      (fun st -> hooks.span ~name:(stage_name st) (fun () -> exec st))
      plan.pl_stages;
    match (!final, !eval_out, !annotated) with
    | Some bin, Some ev, Some ann ->
        {
          o_variant = plan.pl_variant;
          o_eval = ev;
          o_text_size = bin.Cg.Mach.text_size;
          o_debug_size = bin.Cg.Mach.debug_size;
          o_probe_meta_size = bin.Cg.Mach.probe_meta_size;
          o_profiling_cycles = (match !prof with Some po -> po.pr_cycles | None -> 0L);
          o_annotated = ann;
          o_stales = !stales;
          o_recon_stats = !recon;
          o_preinline_decisions = !decisions;
          o_binary = bin;
          o_profile_size = !profile_size;
          o_stale_report = !stale_report;
        }
    | _ -> invalid_arg "Plan.run: plan must end with Rebuild and Evaluate stages"
end

let run_variant ?options variant (w : workload) =
  Plan.run (Plan.make ?options ~variant w)

(* ------------------------------------------------------------------ *)
(* Byte-identity oracle: the same profiling build and training inputs,
   pushed through either the materialized (sample-list) pipeline or the
   streaming (sink + aggregate + log-replay) pipeline, must produce equal
   canonical Text_io dumps. The VM is deterministic, so running it twice
   with different consumers observes the identical sample stream. *)

let profile_pipeline_texts ?(options = default_options) ~streaming variant (w : workload) =
  match variant with
  | Nopgo | Instr_pgo -> []
  | Autofdo | Csspgo_probe_only | Csspgo_full ->
      let probes = match variant with Autofdo -> false | _ -> true in
      let refp = reference w in
      let names = Ir.Guid.Tbl.create 64 in
      let checksums = Ir.Guid.Tbl.create 64 in
      Ir.Program.iter_funcs
        (fun f ->
          Ir.Guid.Tbl.replace names f.Ir.Func.guid f.Ir.Func.name;
          Ir.Guid.Tbl.replace checksums f.Ir.Func.guid f.Ir.Func.checksum)
        refp;
      let name_of g = Ir.Guid.Tbl.find_opt names g in
      let checksum_of g = Option.value (Ir.Guid.Tbl.find_opt checksums g) ~default:0L in
      let prog = compile w in
      if probes then Pseudo_probe.insert prog;
      Opt.Pass.optimize ~config:options.opt_profiling prog;
      let bin = Cg.Emit.emit ~options:options.emit_opts prog in
      let trim trie =
        if Int64.compare options.trim_threshold 0L > 0 then
          ignore (P.Ctx_profile.trim_cold trie ~threshold:options.trim_threshold)
      in
      if streaming then begin
        let ix = Pg.Bindex.create bin in
        let agg = Pg.Ranges.create () in
        let log = Vm.Sample_log.create () in
        let mb = Missing_frame.start ix in
        let sink =
          {
            Vm.Machine.on_sample =
              (fun ~lbr ~lbr_len ~stack ~stack_len ->
                Pg.Ranges.feed agg ~lbr ~lbr_len;
                Missing_frame.feed mb ~lbr ~lbr_len;
                Vm.Sample_log.add log ~lbr ~lbr_len ~stack ~stack_len);
            on_labels = Vm.Sample_log.set_label log;
          }
        in
        (* debug_poison: the oracle also proves our own sinks never alias
           the scratch buffers. *)
        ignore
          (run_specs ~pmu:(Some options.pmu) ~sink ~debug_poison:true bin
             ~entry:w.w_entry w.w_train);
        let flat_probes () =
          P.Text_io.to_string
            (P.Text_io.Probe_prof
               (Probe_corr.correlate_agg ~name_of ~index:ix ~checksum_of bin agg))
        in
        match variant with
        | Autofdo ->
            [
              ( "lines",
                P.Text_io.to_string
                  (P.Text_io.Line_prof (Pg.Dwarf_corr.correlate_agg ~name_of ~index:ix bin agg))
              );
            ]
        | Csspgo_probe_only -> [ ("probes", flat_probes ()) ]
        | _ ->
            let missing =
              if options.use_missing_frame_inference then Some (Missing_frame.finish mb)
              else None
            in
            let st = Ctx_reconstruct.start ~name_of ?missing ~checksum_of ix in
            Vm.Sample_log.iter log (fun ~lbr ~lbr_len ~stack ~stack_len ->
                Ctx_reconstruct.feed st ~lbr ~lbr_len ~stack ~stack_len);
            let trie, _ = Ctx_reconstruct.finish st in
            trim trie;
            [
              ("ctx", P.Text_io.to_string (P.Text_io.Ctx_prof trie));
              ("probes", flat_probes ());
            ]
      end
      else begin
        let r = run_specs ~pmu:(Some options.pmu) bin ~entry:w.w_entry w.w_train in
        let samples = r.r_samples in
        let flat_probes () =
          P.Text_io.to_string
            (P.Text_io.Probe_prof (Probe_corr.correlate ~name_of ~checksum_of bin samples))
        in
        match variant with
        | Autofdo ->
            [
              ( "lines",
                P.Text_io.to_string
                  (P.Text_io.Line_prof (Pg.Dwarf_corr.correlate ~name_of bin samples)) );
            ]
        | Csspgo_probe_only -> [ ("probes", flat_probes ()) ]
        | _ ->
            let missing =
              if options.use_missing_frame_inference then Some (Missing_frame.build bin samples)
              else None
            in
            let trie, _ = Ctx_reconstruct.reconstruct ~name_of ?missing ~checksum_of bin samples in
            trim trie;
            [
              ("ctx", P.Text_io.to_string (P.Text_io.Ctx_prof trie));
              ("probes", flat_probes ());
            ]
      end
