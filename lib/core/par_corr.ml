module S = Csspgo_sched.Scheduler
module Vm = Csspgo_vm
module Pg = Csspgo_profgen
module P = Csspgo_profile
module Obs = Csspgo_obs
module Counter = Csspgo_support.Counter

type shard = Vm.Sample_log.t list

let shard_samples shard =
  List.fold_left (fun acc log -> acc + Vm.Sample_log.n_samples log) 0 shard

let iter_shard shard f = List.iter (fun log -> Vm.Sample_log.iter log f) shard

let shards_of_log ?chunk log =
  List.map (fun l -> [ l ]) (Vm.Sample_log.split ?chunk log)

(* Group decoded chunks (which can be tiny — one per shipped fleet batch)
   into shards of at least [target] samples. The grouping is a pure
   function of the chunk list, never of a job count; and since every
   entry point below is exact under *any* whole-sample partition, the
   partition choice can only affect wall-clock, not one output byte. *)
let plan ?(target = Vm.Sample_log.chunk_samples) chunks =
  if target <= 0 then invalid_arg "Par_corr.plan: target must be positive";
  let flush cur acc = match cur with [] -> acc | _ -> List.rev cur :: acc in
  let rec go cur n acc = function
    | [] -> List.rev (flush cur acc)
    | c :: tl ->
        let cn = Vm.Sample_log.n_samples c in
        if cn = 0 then go cur n acc tl
        else if n + cn >= target then go [] 0 (flush (c :: cur) acc) tl
        else go (c :: cur) (n + cn) acc tl
  in
  go [] 0 [] chunks

let bump obs name v = Obs.Metrics.bump (Obs.Metrics.counter obs name) v

let observe ?(obs = Obs.Metrics.null) shards =
  bump obs "parcorr.shards" (List.length shards);
  bump obs "parcorr.samples" (List.fold_left (fun a s -> a + shard_samples s) 0 shards)

(* --- range/branch aggregation ---------------------------------------- *)

(* Fresh-table combine: tree_reduce may hand a node's operand to another
   node on the serial path, so merges never mutate their inputs. Counter
   addition is commutative/associative, so the reduced tables hold exactly
   the counts one [Ranges.feed] pass over the whole stream would. *)
let merge_agg a b =
  let m = Pg.Ranges.create () in
  Counter.merge_into ~into:m.Pg.Ranges.range_counts a.Pg.Ranges.range_counts;
  Counter.merge_into ~into:m.Pg.Ranges.range_counts b.Pg.Ranges.range_counts;
  Counter.merge_into ~into:m.Pg.Ranges.branch_counts a.Pg.Ranges.branch_counts;
  Counter.merge_into ~into:m.Pg.Ranges.branch_counts b.Pg.Ranges.branch_counts;
  m

let aggregate ?obs ?metrics ?trace ~jobs shards =
  observe ?obs shards;
  let aggs =
    S.map ?metrics ?trace ~jobs
      (fun shard ->
        let agg = Pg.Ranges.create () in
        iter_shard shard (fun ~lbr ~lbr_len ~stack:_ ~stack_len:_ ->
            Pg.Ranges.feed agg ~lbr ~lbr_len);
        agg)
      shards
  in
  match S.tree_reduce ?metrics ?trace ~jobs merge_agg aggs with
  | Some agg -> agg
  | None -> Pg.Ranges.create ()

(* --- tail-call edge table --------------------------------------------- *)

let missing ?(obs = Obs.Metrics.null) ?metrics ?trace ~jobs index shards =
  let tables =
    S.map ?metrics ?trace ~jobs
      (fun shard ->
        (* Per-shard builders run on a null registry: each shard counts
           the edges *it* first saw, and duplicates across shards would
           overreport against the serial run. The union's edge count is
           the serial count, credited once below. *)
        let mb = Missing_frame.start ~obs:Obs.Metrics.null index in
        iter_shard shard (fun ~lbr ~lbr_len ~stack:_ ~stack_len:_ ->
            Missing_frame.feed mb ~lbr ~lbr_len);
        Missing_frame.finish mb)
      shards
  in
  let t =
    match S.tree_reduce ?metrics ?trace ~jobs Missing_frame.union tables with
    | Some t -> t
    | None ->
        Missing_frame.finish (Missing_frame.start ~obs:Obs.Metrics.null index)
  in
  bump obs "missing-frame.edges" (Missing_frame.n_edges t);
  t

(* --- context reconstruction ------------------------------------------- *)

let zero_stats =
  {
    Ctx_reconstruct.st_samples = 0;
    st_dropped_misaligned = 0;
    st_gaps_resolved = 0;
    st_gaps_failed = 0;
  }

let add_stats a b =
  {
    Ctx_reconstruct.st_samples =
      a.Ctx_reconstruct.st_samples + b.Ctx_reconstruct.st_samples;
    st_dropped_misaligned =
      a.Ctx_reconstruct.st_dropped_misaligned + b.Ctx_reconstruct.st_dropped_misaligned;
    st_gaps_resolved =
      a.Ctx_reconstruct.st_gaps_resolved + b.Ctx_reconstruct.st_gaps_resolved;
    st_gaps_failed =
      a.Ctx_reconstruct.st_gaps_failed + b.Ctx_reconstruct.st_gaps_failed;
  }

let reconstruct ?name_of ?missing ~checksum_of ?obs ?metrics ?trace ~jobs index
    shards =
  observe ?obs shards;
  let parts =
    S.map ?metrics ?trace ~jobs
      (fun shard ->
        (* The complete missing-frame table is shared by every shard (path
           uniqueness needs the whole edge set), and attribution is
           per-sample given that table, so shard tries partition the
           serial trie's counts exactly. [obs] is the sharded metrics
           registry: per-shard flushes sum to the serial totals. *)
        let st = Ctx_reconstruct.start ?name_of ?missing ~checksum_of ?obs index in
        iter_shard shard (fun ~lbr ~lbr_len ~stack ~stack_len ->
            Ctx_reconstruct.feed st ~lbr ~lbr_len ~stack ~stack_len);
        Ctx_reconstruct.finish st)
      shards
  in
  let merge (ta, sa) (tb, sb) =
    let trie = P.Ctx_profile.create () in
    P.Merge.ctx ~into:trie ~weight:1L ta;
    P.Merge.ctx ~into:trie ~weight:1L tb;
    (trie, add_stats sa sb)
  in
  match S.tree_reduce ?metrics ?trace ~jobs merge parts with
  | Some r -> r
  | None -> (P.Ctx_profile.create (), zero_stats)
