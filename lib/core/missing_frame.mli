(** Missing-frame inference for tail-call elimination (§III.B).

    TCE replaces the caller's frame, so stack walks skip the tail-calling
    function(s). The inferrer builds a dynamic call graph of *tail-call
    edges only* from the LBR streams (a branch whose source instruction is a
    tail call), then, given an observed gap — a call site whose static
    callee [from_func] does not match the next physical frame's function
    [to_func] — searches for a unique tail-call path connecting them. A
    unique path fills in the missing frames; multiple candidate paths make
    the inference fail for that gap (the paper reports >2/3 recovered in
    practice). *)

type t

type builder
(** Online edge-table construction: the tail-call graph is built from the
    LBR stream *while profiling runs*, so no sample needs to be kept for a
    second pass. The table must be complete before [resolve] is first
    called — path uniqueness is sensitive to every edge — which is why
    context reconstruction replays a compact sample log only after the
    builder has seen the whole stream. *)

val start : ?obs:Csspgo_obs.Metrics.t -> Csspgo_profgen.Bindex.t -> builder

val feed : builder -> lbr:(int * int) array -> lbr_len:int -> unit
(** Consume one sample's LBR entries (copies nothing; scratch-safe). *)

val finish : builder -> t
(** Also bumps the [missing-frame.edges] counter on [obs] (once, with the
    final edge count). *)

val build : Csspgo_codegen.Mach.binary -> Csspgo_vm.Machine.sample list -> t
(** Batch wrapper: [start] + [feed] per sample + [finish]. *)

val n_edges : t -> int

val union : t -> t -> t
(** Merge two edge tables (inputs untouched). The union of per-shard
    tables equals the table one builder fed the whole stream would hold,
    as an edge {e set}; per-function edge-list order may differ, which
    cannot change any {!resolve} verdict — resolution enumerates all
    acyclic paths and succeeds only on uniqueness, an order-independent
    property. This is the sharded correlator's reduction for the
    tail-call graph. *)

val resolve :
  t -> from_func:Csspgo_ir.Guid.t -> to_func:Csspgo_ir.Guid.t -> int list option
(** The unique chain of tail-call instruction addresses leading from
    [from_func] to (a tail call targeting) [to_func]; [Some []] when
    [from_func = to_func] (no gap), [None] when no path or multiple paths
    exist. Search depth is bounded. *)
