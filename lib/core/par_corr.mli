(** Sharded parallel correlation: run the existing streaming correlators
    per shard of a chunk-partitioned sample log on scheduler domains, and
    reduce the per-shard results to {e exactly} the serial answer.

    Shard boundaries always walk whole samples ({!Csspgo_vm.Sample_log}'s
    chunking), and every reduction here is exact under any whole-sample
    partition of the stream:

    - range/branch aggregates are {!Csspgo_support.Counter} tables, which
      merge by addition (commutative, associative);
    - tail-call edge tables merge by set union, and
      {!Missing_frame.resolve} is edge-order-independent;
    - per-shard context tries (each reconstructed against the {e complete}
      missing-frame table) merge at equal weight under the
      {!Csspgo_profile.Merge} laws, and reconstruction attributes each
      sample independently given that table, so shard tries partition the
      serial trie's counts.

    Consequently the output is byte-identical to a serial run at any
    [jobs] — parallelism changes wall-clock only. The non-additive stage,
    DWARF line correlation (line counts take a {e max} across instructions
    sharing a line), is deliberately left out of the parallel region:
    callers parallelize {!aggregate} and run [Dwarf_corr.correlate_agg]
    once on the merged aggregate, which is the exact serial computation. *)

type shard = Csspgo_vm.Sample_log.t list
(** One shard: a run of chunks fed in order. Chunks are never copied or
    concatenated — feeding a shard replays each chunk in sequence. *)

val shard_samples : shard -> int

val shards_of_log :
  ?chunk:int -> Csspgo_vm.Sample_log.t -> shard list
(** Partition an in-memory log on {!Csspgo_vm.Sample_log.split} boundaries
    (default {!Csspgo_vm.Sample_log.chunk_samples} samples per shard). *)

val plan : ?target:int -> Csspgo_vm.Sample_log.t list -> shard list
(** Group already-decoded chunks (e.g. one per fleet batch) into shards of
    at least [target] samples (default
    {!Csspgo_vm.Sample_log.chunk_samples}), preserving order and dropping
    empty chunks. A pure function of the chunk list — never of a job
    count.
    @raise Invalid_argument when [target] is not positive. *)

val aggregate :
  ?obs:Csspgo_obs.Metrics.t ->
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  jobs:int ->
  shard list ->
  Csspgo_profgen.Ranges.agg
(** Per-shard [Ranges.feed] replay on up to [jobs] domains, reduced by
    counter addition via [Scheduler.tree_reduce]: exactly the aggregate
    one serial pass over the whole stream builds. [obs] gets the
    [parcorr.shards] / [parcorr.samples] counters; [metrics]/[trace] flow
    to the scheduler (task counters, per-shard spans on wall-clock
    traces). *)

val missing :
  ?obs:Csspgo_obs.Metrics.t ->
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  jobs:int ->
  Csspgo_profgen.Bindex.t ->
  shard list ->
  Missing_frame.t
(** Per-shard tail-call-graph construction reduced by {!Missing_frame.union}.
    The [missing-frame.edges] counter on [obs] is credited once with the
    union's count — the serial number, not the per-shard sum. *)

val reconstruct :
  ?name_of:(Csspgo_ir.Guid.t -> string option) ->
  ?missing:Missing_frame.t ->
  checksum_of:(Csspgo_ir.Guid.t -> int64) ->
  ?obs:Csspgo_obs.Metrics.t ->
  ?metrics:Csspgo_obs.Metrics.t ->
  ?trace:Csspgo_obs.Trace.t ->
  jobs:int ->
  Csspgo_profgen.Bindex.t ->
  shard list ->
  Csspgo_profile.Ctx_profile.t * Ctx_reconstruct.stats
(** Per-shard Algorithm 1 against the shared (complete) [missing] table,
    reduced by equal-weight {!Csspgo_profile.Merge.ctx} with summed stats.
    Cold-context trimming is the caller's job, applied {e after} the merge
    (exactly where the serial recipe applies it). *)
