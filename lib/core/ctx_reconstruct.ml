module Ir = Csspgo_ir
module Mach = Csspgo_codegen.Mach
module Vm = Csspgo_vm
module P = Csspgo_profile
module Pg = Csspgo_profgen

type stats = {
  st_samples : int;
  st_dropped_misaligned : int;
  st_gaps_resolved : int;
  st_gaps_failed : int;
}

type stream = {
  sm_feed :
    lbr:(int * int) array -> lbr_len:int -> stack:int array -> stack_len:int -> unit;
  sm_finish : unit -> P.Ctx_profile.t * stats;
}

(* One recorded trie bump from a memoized range attribution: either a probe
   hit or a callsite-target count on an already-resolved ctx node. *)
type attr_act =
  | A_probe of P.Ctx_profile.node * int
  | A_call of P.Ctx_profile.node * int * Ir.Guid.t

let start ?(name_of = fun _ -> None) ?missing ~checksum_of
    ?(obs = Csspgo_obs.Metrics.null) (ix : Pg.Bindex.t) =
  let b = Pg.Bindex.binary ix in
  let trie = P.Ctx_profile.create () in
  let name_for guid =
    Option.value (name_of guid) ~default:(Format.asprintf "%a" Ir.Guid.pp guid)
  in
  let dropped = ref 0 in
  let gaps_resolved = ref 0 in
  let gaps_failed = ref 0 in
  let n_samples = ref 0 in
  (* Telemetry accumulated locally and flushed once in [finish]; the
     feed path never touches the registry, so attribution (and the
     byte-identity oracle it feeds) is unchanged by observation. *)
  let inferred = ref 0 in
  let depth_hist = Array.make 64 0 in
  (* Resolve the ctx node for a flat outermost-first path + leaf. *)
  let node_for (path : (Ir.Guid.t * int) list) (leaf : Ir.Guid.t) =
    match path with
    | [] -> Some (P.Ctx_profile.base trie leaf ~name:(name_for leaf))
    | (f0, _) :: _ ->
        (* Resolve the root's name before [node_at] can get-or-create it
           with the hex-guid placeholder: root naming must not depend on
           whether a shallow or a deep sample reaches the root first, or
           shard partitioning diverges from the serial trie. *)
        ignore (P.Ctx_profile.base trie f0 ~name:(name_for f0));
        (* Convert [(f0,s0);(f1,s1);...] + leaf into node_at path format:
           each element ((parent, site), child, child_name). *)
        let rec pairs = function
          | [ (f, s) ] -> [ ((f, s), leaf, name_for leaf) ]
          | (f, s) :: ((g, _) :: _ as rest) -> ((f, s), g, name_for g) :: pairs rest
          | [] -> []
        in
        P.Ctx_profile.node_at trie ~path:(pairs path)
  in
  let ensure_checksum (node : P.Ctx_profile.node) =
    if Int64.equal node.P.Ctx_profile.n_prof.P.Probe_profile.fe_checksum 0L then
      node.P.Ctx_profile.n_prof.P.Probe_profile.fe_checksum <- checksum_of node.P.Ctx_profile.n_func
  in
  (* Build the outermost-first caller path from physical return addresses
     (innermost-first list), repairing tail-call gaps. All per-LBR-entry
     lookups (branch classification, call-before, inline level paths) hit
     the dense [Bindex] tables — no hashing on this path. *)
  let path_of_callers (callers : int list) (leaf_addr : int) : (Ir.Guid.t * int) list =
    let path = ref [] in
    (* expected: the function the previous (outer) level statically calls *)
    let expected : Ir.Guid.t option ref = ref None in
    let reset () =
      path := [];
      expected := None
    in
    let bridge_gap ~to_func =
      match !expected with
      | Some exp when not (Ir.Guid.equal exp to_func) -> (
          match missing with
          | None ->
              incr gaps_failed;
              reset ()
          | Some mf -> (
              match Missing_frame.resolve mf ~from_func:exp ~to_func with
              | Some chain ->
                  incr gaps_resolved;
                  inferred := !inferred + List.length chain;
                  List.iter
                    (fun addr ->
                      let ti = Pg.Bindex.idx_of_addr ix addr in
                      if ti >= 0 then path := !path @ Pg.Bindex.level_path ix ti)
                    chain
              | None ->
                  incr gaps_failed;
                  reset ()))
      | _ -> ()
    in
    List.iter
      (fun ret_addr ->
        match Pg.Bindex.call_idx_before ix ret_addr with
        | -1 -> reset ()
        | ci ->
            bridge_gap ~to_func:(Pg.Bindex.container ix ci);
            path := !path @ Pg.Bindex.level_path ix ci;
            expected := Pg.Bindex.callee ix ci)
      (List.rev callers);
    (* Leaf-level gap (tail calls between the innermost caller and the leaf). *)
    (match Pg.Bindex.func_guid_of_addr ix leaf_addr with
    | Some leaf_container -> bridge_gap ~to_func:leaf_container
    | None -> ());
    !path
  in
  (* Hot loops replay the same few (range, caller-stack) pairs for
     thousands of samples. Memoize the attribution of each pair — the ctx
     nodes it bumps and the gap-counter deltas it causes — so repeats skip
     path reconstruction, the probe scan and the inline-tree walks
     entirely. Replaying recorded bumps is bit-identical to recomputing
     them: every count is additive and nodes are stable once created. The
     cache is keyed on program structure (distinct ranges x caller
     stacks), not on sample count, and capped defensively. *)
  let attr_cache : (int * int * int list, attr_act array * int * int * int) Hashtbl.t =
    Hashtbl.create 1024
  in
  let attr_cache_cap = 1 lsl 16 in
  let replay acts =
    Array.iter
      (function
        | A_probe (node, id) ->
            P.Probe_profile.add_probe node.P.Ctx_profile.n_prof id 1L
        | A_call (node, cs, callee) ->
            P.Probe_profile.add_call node.P.Ctx_profile.n_prof cs callee 1L)
      acts
  in
  (* Attribute one linear range under the given caller state. *)
  let attribute (lo, hi) (callers : int list) =
    if lo > 0 && hi >= lo then begin
      let key = (lo, hi, callers) in
      match Hashtbl.find_opt attr_cache key with
      | Some (acts, d_resolved, d_failed, d_inferred) ->
          gaps_resolved := !gaps_resolved + d_resolved;
          gaps_failed := !gaps_failed + d_failed;
          inferred := !inferred + d_inferred;
          replay acts
      | None ->
          let resolved0 = !gaps_resolved
          and failed0 = !gaps_failed
          and inferred0 = !inferred in
          let acts = ref [] in
          let caller_path = path_of_callers callers lo in
          (* Probe hits, with full inline expansion from the probe chain. *)
          List.iter
            (fun (pr : Mach.probe_rec) ->
              let chain_path =
                List.rev_map
                  (fun cs -> (cs.Ir.Dloc.cs_func, cs.Ir.Dloc.cs_probe))
                  pr.Mach.pr_chain
              in
              match node_for (caller_path @ chain_path) pr.Mach.pr_func with
              | Some node ->
                  ensure_checksum node;
                  acts := A_probe (node, pr.Mach.pr_id) :: !acts
              | None -> ())
            (Probe_corr.probes_in_range b (lo, hi));
          (* Callsite targets. *)
          Pg.Bindex.iter_range ix (lo, hi) (fun ii ->
              if Pg.Bindex.cs_probe ix ii > 0 then
                match Pg.Bindex.callee ix ii with
                | Some callee ->
                    let lp = Pg.Bindex.level_path ix ii in
                    (* The call's owner context: everything up to the owner. *)
                    let rec split_last = function
                      | [] -> ([], None)
                      | [ (f, _) ] -> ([], Some f)
                      | x :: rest ->
                          let init, last = split_last rest in
                          (x :: init, last)
                    in
                    let owner_prefix, owner = split_last lp in
                    (match owner with
                    | Some owner_func -> (
                        match node_for (caller_path @ owner_prefix) owner_func with
                        | Some node ->
                            ensure_checksum node;
                            acts :=
                              A_call (node, Pg.Bindex.cs_probe ix ii, callee)
                              :: !acts
                        | None -> ())
                    | None -> ())
                | None -> ());
          let acts = Array.of_list (List.rev !acts) in
          replay acts;
          if Hashtbl.length attr_cache < attr_cache_cap then
            Hashtbl.add attr_cache key
              ( acts,
                !gaps_resolved - resolved0,
                !gaps_failed - failed0,
                !inferred - inferred0 )
    end
  in
  let feed ~lbr ~lbr_len ~stack ~stack_len =
    incr n_samples;
    if lbr_len > 0 && stack_len > 0 then begin
      let _, last_tgt = lbr.(lbr_len - 1) in
      (* Synchronization check: the sampled leaf frame must live in the
         function the last LBR branch landed in. *)
      let aligned =
        match
          (Pg.Bindex.func_guid_of_addr ix stack.(0), Pg.Bindex.func_guid_of_addr ix last_tgt)
        with
        | Some a, Some c -> Ir.Guid.equal a c
        | _ -> false
      in
      if not aligned then incr dropped
      else begin
        let d = min (stack_len - 1) 63 in
        depth_hist.(d) <- depth_hist.(d) + 1;
        let callers =
          ref
            (let rec go i acc = if i < 1 then acc else go (i - 1) (stack.(i) :: acc) in
             go (stack_len - 1) [])
        in
        (* Newest run: from the last branch target to the sampled ip. *)
        attribute (last_tgt, stack.(0)) !callers;
        (* Walk branches newest -> oldest, undoing each one. *)
        for i = lbr_len - 1 downto 1 do
          let cur_src, _ = lbr.(i) in
          let _, older_tgt = lbr.(i - 1) in
          (match Pg.Bindex.kind_of_addr ix cur_src with
          | Pg.Bindex.K_call -> ( match !callers with [] -> () | _ :: tl -> callers := tl)
          | Pg.Bindex.K_tail_call -> ()
          | Pg.Bindex.K_ret ->
              callers :=
                (let _, t = lbr.(i) in
                 t)
                :: !callers
          | Pg.Bindex.K_other -> ());
          attribute (older_tgt, cur_src) !callers
        done
      end
    end
  in
  let finish () =
    (let module M = Csspgo_obs.Metrics in
     M.bump (M.counter obs "ctx.samples") !n_samples;
     M.bump (M.counter obs "ctx.dropped-misaligned") !dropped;
     M.bump (M.counter obs "ctx.gaps-resolved") !gaps_resolved;
     M.bump (M.counter obs "ctx.gaps-failed") !gaps_failed;
     M.bump (M.counter obs "ctx.inferred-frames") !inferred;
     let h = M.histogram obs "ctx.context-depth" in
     Array.iteri (fun d count -> if count > 0 then M.observe_n h d count) depth_hist);
    ( trie,
      {
        st_samples = !n_samples;
        st_dropped_misaligned = !dropped;
        st_gaps_resolved = !gaps_resolved;
        st_gaps_failed = !gaps_failed;
      } )
  in
  { sm_feed = feed; sm_finish = finish }

let feed s ~lbr ~lbr_len ~stack ~stack_len = s.sm_feed ~lbr ~lbr_len ~stack ~stack_len
let finish s = s.sm_finish ()
let sink s = { Vm.Machine.on_sample = s.sm_feed; on_labels = Vm.Machine.no_labels }

let reconstruct ?name_of ?missing ~checksum_of (b : Mach.binary) samples =
  let st = start ?name_of ?missing ~checksum_of (Pg.Bindex.create b) in
  List.iter
    (fun (s : Vm.Machine.sample) ->
      st.sm_feed ~lbr:s.Vm.Machine.s_lbr
        ~lbr_len:(Array.length s.Vm.Machine.s_lbr)
        ~stack:s.Vm.Machine.s_stack
        ~stack_len:(Array.length s.Vm.Machine.s_stack))
    samples;
  st.sm_finish ()
