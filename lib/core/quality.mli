(** Profile-quality metrics (§IV.C): the block-overlap degree between a
    candidate profile and the instrumentation ground truth, both annotated
    onto structurally identical pre-optimization IR.

    Per function with block set V:
    D(V) = sum over v of min(f(v)/sum f, gt(v)/sum gt),
    and per program, the f-weighted aggregation of D(V). *)

val func_overlap : truth:Csspgo_ir.Func.t -> Csspgo_ir.Func.t -> float option
(** [None] when either side has zero total count. *)

val block_overlap : truth:Csspgo_ir.Program.t -> Csspgo_ir.Program.t -> float
(** Result in [0, 1]. Tolerates mismatched function and block sets (the
    stale-matching scenario): functions missing on either side and blocks
    present in only one CFG simply contribute no overlap — fractions are
    normalized per side, so nothing divides by zero. [0.0] when no function
    pair carries counts on both sides ("no data", matching the
    {!func_overlap} [None] convention). *)

val profile_overlap :
  Csspgo_profile.Text_io.profile -> Csspgo_profile.Text_io.profile -> float
(** Distribution overlap of two same-kind profiles, without IR: each side
    flattens to (function, location) body counts — probe ids for probe
    profiles, (line, discriminator) for line profiles, the context-merged
    flat view for tries — normalized per side, summing [min] over shared
    keys. In [0, 1]. Both sides empty (no counts) is [1.0] — no data, no
    change; exactly one side empty is [0.0]. The window-over-window
    fidelity signal the fleet health layer feeds to
    [Obs.Health.observe ~overlap]: drift between consecutive windows
    shifts or renames keys, and the lost mass is exactly the dip.
    @raise Invalid_argument when the kinds differ. *)

type recovery = {
  rec_stale : float;  (** overlap of the stale-matched profile vs truth *)
  rec_fresh : float;  (** overlap of the fresh N+1 profile vs truth *)
  rec_ratio : float;
      (** [rec_stale / rec_fresh]; 1.0 when the fresh overlap is zero
          (nothing to lose — avoids NaN/inf on unexecuted inputs). May
          exceed 1.0 when the stale profile happens to beat the fresh one. *)
}

val recovery :
  truth:Csspgo_ir.Program.t ->
  fresh:Csspgo_ir.Program.t ->
  Csspgo_ir.Program.t ->
  recovery
(** How much of a fresh build-N+1 profile's quality a stale-matched
    build-N profile recovers, all three annotated onto (structurally
    compatible) pre-opt IR of the new source. *)
