(** Probe-based profile correlation (flat, context-insensitive): the
    probe-only CSSPGO variant. Execution ranges from LBR samples are mapped
    onto the pseudo-probe records they cover; copies of a duplicated probe
    accumulate into the same id (summing — correct under code duplication,
    unlike the DWARF max-heuristic), and merged code cannot occur because
    probes block code merge.

    [checksum_of] supplies the profiling build's per-function CFG checksum
    (read from the pseudo-probe descriptors); it is stored in the profile
    for drift detection at annotation time. *)

val correlate_agg :
  ?name_of:(Csspgo_ir.Guid.t -> string option) ->
  ?index:Csspgo_profgen.Bindex.t ->
  checksum_of:(Csspgo_ir.Guid.t -> int64) ->
  ?obs:Csspgo_obs.Metrics.t ->
  Csspgo_codegen.Mach.binary ->
  Csspgo_profgen.Ranges.agg ->
  Csspgo_profile.Probe_profile.t
(** Correlate an online-built aggregate (the streaming entry point). With
    [?index], range expansion walks the dense instruction index. [obs]
    receives [probe-corr.ranges], [probe-corr.ranges-unmatched] (ranges
    covering no probe), [probe-corr.probe-hits] and [probe-corr.callsites],
    each bumped once at the end. *)

val correlate :
  ?name_of:(Csspgo_ir.Guid.t -> string option) ->
  checksum_of:(Csspgo_ir.Guid.t -> int64) ->
  ?obs:Csspgo_obs.Metrics.t ->
  Csspgo_codegen.Mach.binary ->
  Csspgo_vm.Machine.sample list ->
  Csspgo_profile.Probe_profile.t
(** Batch wrapper: [correlate_agg] over [Ranges.aggregate]. *)

val probes_in_range :
  Csspgo_codegen.Mach.binary -> int * int -> Csspgo_codegen.Mach.probe_rec list
(** Probe records anchored within [lo, hi], by binary search. *)
