(** Algorithm 1 (§III.B): reconstruct the calling context of every LBR
    execution range from synchronized LBR + stack samples.

    LBR entries are processed in reverse execution order while maintaining
    the physical frame stack: undoing a call pops the leaf frame, undoing a
    return re-pushes the returned-from frame, and the linear range between
    two consecutive entries is attributed — with its full inline expansion —
    to the stack state current at that point. Probe hits land in the context
    trie at (caller chain ++ probe inline chain).

    Robustness mitigations, as in the paper:
    - misaligned samples (stack lagging the LBR due to sampling skid when
      PEBS is off) are detected by comparing the leaf frame's function with
      the last LBR target's function, and dropped;
    - gaps caused by tail-call elimination are repaired with the
      [Missing_frame] inferrer when a unique tail-call path exists,
      otherwise the outer context is truncated. *)

type stats = {
  st_samples : int;
  st_dropped_misaligned : int;
  st_gaps_resolved : int;   (** missing-frame gaps repaired *)
  st_gaps_failed : int;     (** gaps that truncated the context *)
}

type stream
(** Online reconstruction state. [start] once per profiled binary, [feed]
    each sample (scratch-safe: only ints are read out of the buffers),
    [finish] for the trie + stats. All per-LBR-entry work (branch
    classification, call-before resolution, inline level paths) runs on the
    dense {!Csspgo_profgen.Bindex} tables — no hash lookups on the sample
    path. With missing-frame inference the [Missing_frame.t] passed to
    [start] must already be complete (built online during the profiling run
    and finished before the first [feed]); path uniqueness depends on the
    whole edge table. *)

val start :
  ?name_of:(Csspgo_ir.Guid.t -> string option) ->
  ?missing:Missing_frame.t ->
  checksum_of:(Csspgo_ir.Guid.t -> int64) ->
  ?obs:Csspgo_obs.Metrics.t ->
  Csspgo_profgen.Bindex.t ->
  stream

val feed :
  stream ->
  lbr:(int * int) array -> lbr_len:int -> stack:int array -> stack_len:int -> unit

val finish : stream -> Csspgo_profile.Ctx_profile.t * stats
(** Also flushes telemetry to [obs], accumulated locally during the run:
    [ctx.samples], [ctx.dropped-misaligned], [ctx.gaps-resolved],
    [ctx.gaps-failed], [ctx.inferred-frames] counters and the
    [ctx.context-depth] histogram (stack depth per aligned sample).
    Observation never changes attribution. *)

val sink : stream -> Csspgo_vm.Machine.sink
(** Attach reconstruction directly to a live PMU (only sound when no
    missing-frame table is in play, or it was built by an earlier run). *)

val reconstruct :
  ?name_of:(Csspgo_ir.Guid.t -> string option) ->
  ?missing:Missing_frame.t ->
  checksum_of:(Csspgo_ir.Guid.t -> int64) ->
  Csspgo_codegen.Mach.binary ->
  Csspgo_vm.Machine.sample list ->
  Csspgo_profile.Ctx_profile.t * stats
