module Ir = Csspgo_ir
module Mach = Csspgo_codegen.Mach
module P = Csspgo_profile
module Pg = Csspgo_profgen
module Counter = Csspgo_support.Counter

let probes_in_range (b : Mach.binary) (lo, hi) =
  let probes = b.Mach.probes in
  let n = Array.length probes in
  (* First index with pr_addr >= lo. *)
  let rec lower l r = if l >= r then l else
    let m = (l + r) / 2 in
    if probes.(m).Mach.pr_addr < lo then lower (m + 1) r else lower l m
  in
  let start = lower 0 n in
  let out = ref [] in
  let i = ref start in
  while !i < n && probes.(!i).Mach.pr_addr <= hi do
    out := probes.(!i) :: !out;
    incr i
  done;
  List.rev !out

let default_name guid = Format.asprintf "%a" Ir.Guid.pp guid

let correlate_agg ?(name_of = fun _ -> None) ?index ~checksum_of
    ?(obs = Csspgo_obs.Metrics.null) (b : Mach.binary) (agg : Pg.Ranges.agg) =
  let prof = P.Probe_profile.create () in
  let name_for guid = Option.value (name_of guid) ~default:(default_name guid) in
  let n_ranges = ref 0 and n_unmatched = ref 0 and n_hits = ref 0 and n_calls = ref 0 in
  let fentry guid =
    let fe = P.Probe_profile.get_or_add prof guid ~name:(name_for guid) in
    if Int64.equal fe.P.Probe_profile.fe_checksum 0L then
      fe.P.Probe_profile.fe_checksum <- checksum_of guid;
    fe
  in
  (* Probe counts: sum over all physical copies covered by ranges. *)
  Counter.iter
    (fun range n ->
      incr n_ranges;
      match probes_in_range b range with
      | [] -> incr n_unmatched
      | prs ->
          List.iter
            (fun (pr : Mach.probe_rec) ->
              incr n_hits;
              P.Probe_profile.add_probe (fentry pr.Mach.pr_func) pr.Mach.pr_id n)
            prs)
    agg.Pg.Ranges.range_counts;
  (* Callsite targets: executed calls attributed to their callsite probe in
     the probe's owner function (the innermost inline frame's origin). *)
  let totals = Pg.Ranges.addr_totals ?index b agg in
  Array.iter
    (fun (inst : Mach.inst) ->
      if inst.Mach.i_cs_probe > 0 then
        match inst.Mach.i_op with
        | Mach.MCall c | Mach.MTail_call c -> (
            match Counter.find_opt totals inst.Mach.i_addr with
            | Some total when Int64.compare total 0L > 0 ->
                let owner =
                  if Ir.Dloc.is_none inst.Mach.i_dloc then
                    (* not inlined: owner is the containing function *)
                    b.Mach.funcs.(inst.Mach.i_func).Mach.bf_guid
                  else inst.Mach.i_dloc.Ir.Dloc.origin
                in
                incr n_calls;
                P.Probe_profile.add_call (fentry owner) inst.Mach.i_cs_probe c.Mach.m_callee
                  total
            | _ -> ())
        | _ -> ())
    b.Mach.insts;
  (* Head counts. *)
  Counter.iter
    (fun (_, tgt) n ->
      match Mach.func_index_of_addr b tgt with
      | Some i when b.Mach.funcs.(i).Mach.bf_start = tgt ->
          let fe = fentry b.Mach.funcs.(i).Mach.bf_guid in
          fe.P.Probe_profile.fe_head <- Int64.add fe.P.Probe_profile.fe_head n
      | _ -> ())
    agg.Pg.Ranges.branch_counts;
  let module M = Csspgo_obs.Metrics in
  M.bump (M.counter obs "probe-corr.ranges") !n_ranges;
  M.bump (M.counter obs "probe-corr.ranges-unmatched") !n_unmatched;
  M.bump (M.counter obs "probe-corr.probe-hits") !n_hits;
  M.bump (M.counter obs "probe-corr.callsites") !n_calls;
  prof

let correlate ?name_of ~checksum_of ?obs (b : Mach.binary) samples =
  correlate_agg ?name_of ~checksum_of ?obs b (Pg.Ranges.aggregate samples)
