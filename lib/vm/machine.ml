open Csspgo_support
module Ir = Csspgo_ir
module Mach = Csspgo_codegen.Mach
module T = Ir.Types

type pmu = {
  sample_period : int;
  lbr_depth : int;
  pebs : bool;
  skid_prob : float;
  seed : int64;
}

let default_pmu =
  { sample_period = 9973; lbr_depth = 16; pebs = true; skid_prob = 0.35; seed = 42L }

type sample = {
  s_lbr : (int * int) array;
  s_stack : int array;
}

type sink = {
  on_sample :
    lbr:(int * int) array -> lbr_len:int -> stack:int array -> stack_len:int -> unit;
  on_labels : Csspgo_support.Label_set.t -> unit;
}

let no_labels (_ : Csspgo_support.Label_set.t) = ()

type result = {
  cycles : int64;
  instructions : int64;
  ret_value : int64;
  samples : sample list;
  n_samples : int;
  counters : int64 array;
  icache_misses : int64;
  taken_branches : int64;
  mispredicts : int64;
  value_profiles : (int, (int64, int64) Hashtbl.t) Hashtbl.t;
  addr_counts : (int, int64) Hashtbl.t option;
}

exception Trap of string

(* ------------------------------------------------------------------ *)
(* Decoded representation: names and guids resolved to dense indices,
   addresses resolved to instruction indices where possible.           *)

type doperand =
  | DReg of int
  | DImm of int64
  | DSpill of int

type dop =
  | DArith of T.binop * int * doperand * doperand
  | DCmp of T.cmpop * int * doperand * doperand
  | DSelect of int * int * doperand * doperand
  | DMov of int * doperand
  | DLoad of int * int * doperand    (* global index *)
  | DStore of int * doperand * doperand
  | DSpill_ld of int * int
  | DSpill_st of int * int
  | DCall of dcall
  | DTail_call of dcall
  | DRet of doperand
  | DJmp of int                      (* instruction index *)
  | DJcc of int * bool * int
  | DSwitch of doperand * (int64 * int) list * int
  | DInc of int
  | DValprof of int * doperand
  | DNop

and dcall = {
  d_func : int;        (* bfunc index *)
  d_entry : int;       (* entry instruction index *)
  d_args : doperand array;
  d_ret : Mach.loc option;
  d_spill_args : int;  (* number of OSpill arguments, for the cost model *)
}

type frame = {
  fr_func : int;
  fr_regs : int64 array;
  fr_slots : int64 array;
  fr_ret_pc : int;             (* instruction index to resume at; -1 = entry *)
  fr_ret_dst : Mach.loc option;
}

let decode_operand = function
  | Mach.OReg r -> DReg r
  | Mach.OImm v -> DImm v
  | Mach.OSpill s -> DSpill s

let decode (b : Mach.binary) =
  let gindex = Hashtbl.create 16 in
  List.iteri (fun i (name, _) -> Hashtbl.replace gindex name i) b.Mach.globals;
  let entry_idx = Ir.Guid.Tbl.create 64 in
  let func_by_guid = Ir.Guid.Tbl.create 64 in
  Array.iteri
    (fun i (f : Mach.bfunc) ->
      Ir.Guid.Tbl.replace func_by_guid f.Mach.bf_guid i;
      match Hashtbl.find_opt b.Mach.addr_index f.Mach.bf_start with
      | Some idx -> Ir.Guid.Tbl.replace entry_idx f.Mach.bf_guid idx
      | None -> ())
    b.Mach.funcs;
  let idx_of_addr addr =
    match Hashtbl.find_opt b.Mach.addr_index addr with
    | Some i -> i
    | None -> raise (Trap (Printf.sprintf "jump to unmapped address 0x%x" addr))
  in
  let decode_call (c : Mach.mcall) =
    let fi =
      match Ir.Guid.Tbl.find_opt func_by_guid c.Mach.m_callee with
      | Some i -> i
      | None -> raise (Trap ("call to unknown function " ^ c.Mach.m_callee_name))
    in
    let entry =
      match Ir.Guid.Tbl.find_opt entry_idx c.Mach.m_callee with
      | Some i -> i
      | None -> raise (Trap ("function with no code: " ^ c.Mach.m_callee_name))
    in
    {
      d_func = fi;
      d_entry = entry;
      d_args = Array.of_list (List.map decode_operand c.Mach.m_args);
      d_ret = c.Mach.m_ret;
      d_spill_args =
        List.length (List.filter (function Mach.OSpill _ -> true | _ -> false) c.Mach.m_args);
    }
  in
  let dops =
    Array.map
      (fun (inst : Mach.inst) ->
        match inst.Mach.i_op with
        | Mach.MArith (op, d, a, b') -> DArith (op, d, decode_operand a, decode_operand b')
        | Mach.MCmp (op, d, a, b') -> DCmp (op, d, decode_operand a, decode_operand b')
        | Mach.MSelect (d, c, a, b') -> DSelect (d, c, decode_operand a, decode_operand b')
        | Mach.MMov (d, a) -> DMov (d, decode_operand a)
        | Mach.MLoad (d, g, i) -> DLoad (d, Hashtbl.find gindex g, decode_operand i)
        | Mach.MStore (g, i, v) -> DStore (Hashtbl.find gindex g, decode_operand i, decode_operand v)
        | Mach.MSpill_ld (d, s) -> DSpill_ld (d, s)
        | Mach.MSpill_st (s, r) -> DSpill_st (s, r)
        | Mach.MCall c -> DCall (decode_call c)
        | Mach.MTail_call c -> DTail_call (decode_call c)
        | Mach.MRet o -> DRet (decode_operand o)
        | Mach.MJmp a -> DJmp (idx_of_addr a)
        | Mach.MJcc (c, pol, a) -> DJcc (c, pol, idx_of_addr a)
        | Mach.MSwitch (o, cases, d) ->
            DSwitch (decode_operand o, List.map (fun (k, a) -> (k, idx_of_addr a)) cases, idx_of_addr d)
        | Mach.MInc c -> DInc c
        | Mach.MValprof (s, o) -> DValprof (s, decode_operand o)
        | Mach.MNop -> DNop)
      b.Mach.insts
  in
  (dops, entry_idx)

(* ------------------------------------------------------------------ *)

let icache_lines = 512 (* 512 * 64B = 32 KiB, direct-mapped *)

let run ?(pmu = Some default_pmu) ?(globals_init = []) ?(args = []) ?(count_addrs = false)
    ?(fuel = 2_000_000_000L) ?sink ?labels ?(debug_poison = false) ?obs
    (b : Mach.binary) ~entry =
  let dops, entry_idx = decode b in
  let insts = b.Mach.insts in
  let n_inst = Array.length insts in
  (* Globals. *)
  let garrays =
    Array.of_list
      (List.map
         (fun (name, size) ->
           let a = Array.make (max size 1) 0L in
           (match List.assoc_opt name globals_init with
           | Some init ->
               Array.blit init 0 a 0 (min (Array.length init) (Array.length a))
           | None -> ());
           a)
         b.Mach.globals)
  in
  let counters = Array.make (max b.Mach.n_counters 1) 0L in
  let value_profiles : (int, (int64, int64) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let addr_counts = if count_addrs then Some (Hashtbl.create 4096) else None in
  (* Entry function. *)
  let entry_guid = Ir.Guid.of_name entry in
  let entry_fidx =
    let r = ref (-1) in
    Array.iteri
      (fun i (f : Mach.bfunc) -> if Ir.Guid.equal f.Mach.bf_guid entry_guid then r := i)
      b.Mach.funcs;
    if !r < 0 then raise (Trap ("no entry function " ^ entry));
    !r
  in
  let entry_ip =
    match Ir.Guid.Tbl.find_opt entry_idx entry_guid with
    | Some i -> i
    | None -> raise (Trap ("entry function has no code: " ^ entry))
  in
  let mk_frame fidx ret_pc ret_dst =
    let f = b.Mach.funcs.(fidx) in
    {
      fr_func = fidx;
      fr_regs = Array.make Mach.n_phys 0L;
      fr_slots = Array.make (max f.Mach.bf_nslots 1) 0L;
      fr_ret_pc = ret_pc;
      fr_ret_dst = ret_dst;
    }
  in
  let write_loc (fr : frame) loc v =
    match loc with
    | Mach.LReg p -> fr.fr_regs.(p) <- v
    | Mach.LSpill s -> if s < Array.length fr.fr_slots then fr.fr_slots.(s) <- v
  in
  let stack = ref [ mk_frame entry_fidx (-1) None ] in
  (* Bind entry arguments. *)
  (match !stack with
  | top :: _ ->
      let params = b.Mach.funcs.(entry_fidx).Mach.bf_param_locs in
      List.iteri (fun i v -> if i < Array.length params then write_loc top params.(i) v) args
  | [] -> ());
  let ip = ref entry_ip in
  let cycles = ref 0L in
  let instructions = ref 0L in
  let icache_misses = ref 0L in
  let taken_branches = ref 0L in
  let mispredicts = ref 0L in
  let ret_value = ref 0L in
  let running = ref true in
  (* PMU state. *)
  let lbr_depth = match pmu with Some p -> p.lbr_depth | None -> 16 in
  let lbr = Array.make (max lbr_depth 1) (0, 0) in
  let lbr_len = ref 0 in
  let lbr_pos = ref 0 in
  (* Streaming sample delivery: the ring and frame chain are flushed into
     reusable scratch buffers and handed to the sink. Nothing per-sample
     survives the callback unless the sink copies it. *)
  let lbr_scratch = Array.make (max lbr_depth 1) (0, 0) in
  let stack_scratch = ref (Array.make 64 0) in
  let n_samples = ref 0 in
  let collected = ref [] in
  let the_sink =
    match sink with
    | Some s -> s
    | None ->
        (* Collect sink: reproduces the historical [sample list]. *)
        {
          on_sample =
            (fun ~lbr ~lbr_len ~stack ~stack_len ->
              collected :=
                { s_lbr = Array.sub lbr 0 lbr_len; s_stack = Array.sub stack 0 stack_len }
                :: !collected);
          on_labels = no_labels;
        }
  in
  (* The request's label set is announced through the sink once, before
     the first sample: every sample this run flushes carries it. *)
  (match labels with Some ls -> the_sink.on_labels ls | None -> ());
  let poison_pair = (min_int, min_int) in
  let next_sample =
    ref (match pmu with Some p when p.sample_period > 0 -> Int64.of_int p.sample_period | _ -> Int64.max_int)
  in
  let rng = Rng.create (match pmu with Some p -> p.seed | None -> 1L) in
  (* For skid simulation: kind of the last control transfer. *)
  let last_kind = ref `Other in
  let record_branch kind src_idx tgt_idx =
    taken_branches := Int64.add !taken_branches 1L;
    let src = insts.(src_idx).Mach.i_addr in
    let tgt = if tgt_idx < n_inst then insts.(tgt_idx).Mach.i_addr else 0 in
    lbr.(!lbr_pos) <- (src, tgt);
    lbr_pos := (!lbr_pos + 1) mod Array.length lbr;
    if !lbr_len < Array.length lbr then incr lbr_len;
    last_kind := kind
  in
  let icache = Array.make icache_lines (-1) in
  let predictor = Array.make (max n_inst 1) 1 in
  let charge n = cycles := Int64.add !cycles (Int64.of_int n) in
  let fetch_cost addr size =
    (* Touch every 64-byte line the instruction spans. *)
    let first = addr / 64 and last = (addr + size - 1) / 64 in
    for line = first to last do
      let set = line mod icache_lines in
      if icache.(set) <> line then begin
        icache.(set) <- line;
        icache_misses := Int64.add !icache_misses 1L;
        charge 20
      end
    done
  in
  let ensure_stack_scratch cap =
    if cap > Array.length !stack_scratch then begin
      let a = Array.make (max cap (2 * Array.length !stack_scratch)) 0 in
      Array.blit !stack_scratch 0 a 0 (Array.length !stack_scratch);
      stack_scratch := a
    end
  in
  (* Write the frame walk (leaf first) into the scratch; returns its length. *)
  let walk_stack cur_addr =
    ensure_stack_scratch (1 + List.length !stack);
    let sbuf = !stack_scratch in
    sbuf.(0) <- cur_addr;
    let n = ref 1 in
    (try
       List.iter
         (fun (fr : frame) ->
           if fr.fr_ret_pc < 0 then raise Exit;
           sbuf.(!n) <-
             (if fr.fr_ret_pc < n_inst then insts.(fr.fr_ret_pc).Mach.i_addr else 0);
           incr n)
         !stack
     with Exit -> ());
    !n
  in
  let take_sample () =
    incr n_samples;
    let cur_addr = if !ip < n_inst then insts.(!ip).Mach.i_addr else 0 in
    let stack_len = walk_stack cur_addr in
    let stack_len =
      match pmu with
      | Some p when (not p.pebs) && !lbr_len > 0 && Rng.chance rng p.skid_prob ->
          (* Stack lags the LBR by one control transfer: the skidded walk is
             [src] prepended to the walk with the newest k frames dropped
             (k = 2 after a call, 0 after a return, 1 otherwise), computed
             in place on the scratch. *)
          let src, _ = lbr.((!lbr_pos - 1 + Array.length lbr) mod Array.length lbr) in
          ensure_stack_scratch (stack_len + 1);
          let sbuf = !stack_scratch in
          let k = match !last_kind with `Call -> 2 | `Ret -> 0 | `Other -> 1 in
          let kept = max 0 (stack_len - k) in
          if k = 0 then
            for i = stack_len - 1 downto 0 do
              sbuf.(i + 1) <- sbuf.(i)
            done
          else if k >= 2 then
            for i = 0 to kept - 1 do
              sbuf.(i + 1) <- sbuf.(k + i)
            done;
          (* k = 1: [src] replaces the leaf in place. *)
          sbuf.(0) <- src;
          kept + 1
      | _ -> stack_len
    in
    (* Flush the LBR ring oldest-first into the scratch. *)
    let n = !lbr_len in
    for i = 0 to n - 1 do
      let pos = (!lbr_pos - n + i + Array.length lbr) mod Array.length lbr in
      lbr_scratch.(i) <- lbr.(pos)
    done;
    the_sink.on_sample ~lbr:lbr_scratch ~lbr_len:n ~stack:!stack_scratch ~stack_len;
    if debug_poison then begin
      (* Catch sinks that alias the scratch instead of copying. *)
      Array.fill lbr_scratch 0 (Array.length lbr_scratch) poison_pair;
      Array.fill !stack_scratch 0 (Array.length !stack_scratch) min_int
    end
  in
  let eval (fr : frame) = function
    | DReg r -> fr.fr_regs.(r)
    | DImm v -> v
    | DSpill s -> if s < Array.length fr.fr_slots then fr.fr_slots.(s) else 0L
  in
  while !running do
    if !instructions >= fuel then raise (Trap "fuel exhausted");
    let i = !ip in
    if i < 0 || i >= n_inst then raise (Trap (Printf.sprintf "ip out of text: %d" i));
    let inst = insts.(i) in
    fetch_cost inst.Mach.i_addr inst.Mach.i_size;
    instructions := Int64.add !instructions 1L;
    (match addr_counts with
    | Some tbl ->
        Hashtbl.replace tbl inst.Mach.i_addr
          (Int64.add 1L (Option.value (Hashtbl.find_opt tbl inst.Mach.i_addr) ~default:0L))
    | None -> ());
    let fr = List.hd !stack in
    let next = ref (i + 1) in
    (match dops.(i) with
    | DArith (op, d, a, b') ->
        (* Division by a compile-time constant is strength-reduced
           (multiply/shift sequence), far cheaper than a full divide. *)
        let cost =
          match (op, b') with
          | (T.Div | T.Rem), DImm _ -> 4
          | (T.Div | T.Rem), _ -> 20
          | T.Mul, _ -> 3
          | _ -> 1
        in
        charge cost;
        fr.fr_regs.(d) <- T.eval_binop op (eval fr a) (eval fr b')
    | DCmp (op, d, a, b') ->
        charge 1;
        fr.fr_regs.(d) <- T.eval_cmpop op (eval fr a) (eval fr b')
    | DSelect (d, c, a, b') ->
        charge 1;
        fr.fr_regs.(d) <- (if fr.fr_regs.(c) <> 0L then eval fr a else eval fr b')
    | DMov (d, a) ->
        charge 1;
        fr.fr_regs.(d) <- eval fr a
    | DLoad (d, g, idx) ->
        charge 3;
        let arr = garrays.(g) in
        let n = Array.length arr in
        let k = Int64.to_int (eval fr idx) in
        let k = ((k mod n) + n) mod n in
        fr.fr_regs.(d) <- arr.(k)
    | DStore (g, idx, v) ->
        charge 3;
        let arr = garrays.(g) in
        let n = Array.length arr in
        let k = Int64.to_int (eval fr idx) in
        let k = ((k mod n) + n) mod n in
        arr.(k) <- eval fr v
    | DSpill_ld (d, s) ->
        (* L1-resident, store-forwarded: effectively pipelined. *)
        charge 1;
        fr.fr_regs.(d) <- (if s < Array.length fr.fr_slots then fr.fr_slots.(s) else 0L)
    | DSpill_st (s, r) ->
        charge 1;
        if s < Array.length fr.fr_slots then fr.fr_slots.(s) <- fr.fr_regs.(r)
    | DCall c ->
        (* Call overhead models prologue/epilogue and frame setup. *)
        charge (14 + c.d_spill_args);
        let vals = Array.map (eval fr) c.d_args in
        let nf = mk_frame c.d_func (i + 1) c.d_ret in
        let params = b.Mach.funcs.(c.d_func).Mach.bf_param_locs in
        Array.iteri (fun k v -> if k < Array.length params then write_loc nf params.(k) v) vals;
        stack := nf :: !stack;
        record_branch `Call i c.d_entry;
        next := c.d_entry
    | DTail_call c ->
        charge (10 + c.d_spill_args);
        let vals = Array.map (eval fr) c.d_args in
        (* The caller frame is replaced: it will never appear in stack
           walks again (TCE missing-frame behaviour). *)
        let nf = mk_frame c.d_func fr.fr_ret_pc fr.fr_ret_dst in
        let params = b.Mach.funcs.(c.d_func).Mach.bf_param_locs in
        Array.iteri (fun k v -> if k < Array.length params then write_loc nf params.(k) v) vals;
        stack := nf :: List.tl !stack;
        record_branch `Call i c.d_entry;
        next := c.d_entry
    | DRet o ->
        charge (5 + match o with DSpill _ -> 1 | _ -> 0);
        let v = eval fr o in
        stack := List.tl !stack;
        (match !stack with
        | [] ->
            ret_value := v;
            running := false;
            record_branch `Ret i i
        | parent :: _ ->
            (match fr.fr_ret_dst with
            | Some loc -> write_loc parent loc v
            | None -> ());
            record_branch `Ret i fr.fr_ret_pc;
            next := fr.fr_ret_pc)
    | DJmp t ->
        charge 3;
        record_branch `Other i t;
        next := t
    | DJcc (c, pol, t) ->
        let taken = (fr.fr_regs.(c) <> 0L) = pol in
        (* Per-branch 2-bit saturating predictor: biased branches predict
           near-perfectly after warmup; data-dependent alternating branches
           pay the 12-cycle flush. *)
        let st = predictor.(i) in
        let predicted_taken = st >= 2 in
        if taken <> predicted_taken then begin
          mispredicts := Int64.add !mispredicts 1L;
          charge 12
        end;
        predictor.(i) <- (if taken then min 3 (st + 1) else max 0 (st - 1));
        if taken then begin
          charge 3;
          record_branch `Other i t;
          next := t
        end
        else charge 1
    | DSwitch (o, cases, d) ->
        charge (5 + match o with DSpill _ -> 3 | _ -> 0);
        let v = eval fr o in
        let t = match List.assoc_opt v cases with Some t -> t | None -> d in
        record_branch `Other i t;
        next := t
    | DInc c ->
        charge 5;
        counters.(c) <- Int64.add counters.(c) 1L
    | DValprof (site, o) ->
        charge 5;
        let v = eval fr o in
        let tbl =
          match Hashtbl.find_opt value_profiles site with
          | Some tbl -> tbl
          | None ->
              let tbl = Hashtbl.create 8 in
              Hashtbl.replace value_profiles site tbl;
              tbl
        in
        Hashtbl.replace tbl v
          (Int64.add 1L (Option.value (Hashtbl.find_opt tbl v) ~default:0L))
    | DNop -> charge 1);
    ip := !next;
    (* Sampling: fire when the cycle counter crosses the period. *)
    if !running && Int64.compare !cycles !next_sample >= 0 then begin
      take_sample ();
      (match pmu with
      | Some p when p.sample_period > 0 ->
          next_sample := Int64.add !next_sample (Int64.of_int p.sample_period)
      | _ -> next_sample := Int64.max_int)
    end
  done;
  (* Telemetry fires once per run, off the interpreter loop. The rate
     histogram uses virtual cycles (samples per Mcycle), so it is as
     deterministic as the run itself. *)
  (match obs with
  | Some m when Csspgo_obs.Metrics.enabled m ->
      let module M = Csspgo_obs.Metrics in
      M.incr (M.counter m "vm.runs");
      M.bump (M.counter m "vm.samples-flushed") !n_samples;
      M.bump (M.counter m "vm.instructions") (Int64.to_int !instructions);
      M.bump (M.counter m "vm.cycles") (Int64.to_int !cycles);
      if !n_samples > 0 && Int64.compare !cycles 0L > 0 then
        M.observe
          (M.histogram m "vm.samples-per-mcycle")
          (Int64.to_int (Int64.div (Int64.mul (Int64.of_int !n_samples) 1_000_000L) !cycles))
  | _ -> ());
  {
    cycles = !cycles;
    instructions = !instructions;
    ret_value = !ret_value;
    samples = List.rev !collected;
    n_samples = !n_samples;
    counters;
    icache_misses = !icache_misses;
    taken_branches = !taken_branches;
    mispredicts = !mispredicts;
    value_profiles;
    addr_counts;
  }
