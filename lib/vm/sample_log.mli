(** Compact, replayable PMU sample log: a flat unboxed [int array] arena
    (one record per sample: LBR length, src/tgt pairs, stack length, frame
    addresses). This is the bridge between single-pass sample streaming and
    consumers that need a second look at the stream — notably context
    reconstruction, whose missing-frame table must be complete before the
    first sample is attributed. Two orders of magnitude denser than a
    [Machine.sample list] (no per-sample arrays, no tuple boxing), and
    [Marshal]-safe for the plan cache. *)

type t

val create : unit -> t

val add :
  t -> lbr:(int * int) array -> lbr_len:int -> stack:int array -> stack_len:int -> unit
(** Append one sample (copies the scratch contents; sink-safe). *)

val sink : t -> Machine.sink
(** A recording sink: [Machine.run ~sink:(sink log)] fills [log]. *)

val iter :
  t ->
  (lbr:(int * int) array -> lbr_len:int -> stack:int array -> stack_len:int -> unit) ->
  unit
(** Replay the log in collection order through a sink-shaped callback. The
    callback receives reusable scratch buffers, exactly like a live
    [Machine.sink] — same copy discipline applies. *)

val to_samples : t -> Machine.sample list
(** Materialize as the historical boxed sample list (compat / bench). *)

val append : into:t -> t -> unit
(** Concatenate [src]'s record stream onto [into] (one arena blit; [src]
    is untouched). Replaying the result is replaying [into] then [src] —
    the fleet collector's per-version log reassembly primitive. *)

val n_samples : t -> int

val words : t -> int
(** Heap words used by the arena (capacity, not just length). *)

val compact : t -> unit
(** Trim spare arena capacity (call before marshaling). *)

(** {1 Serialization}

    Two interchangeable on-disk forms share one record layout. The text
    form is the debuggable golden format: a [samplelog] header, then one
    line per sample ([lbr_len src tgt ... stack_len addr ...], ints
    space-separated). The binary form is a digest-framed
    {!Csspgo_support.Wire} envelope (magic ["CSLG"]): version 2 frames one
    varint-packed section per chunk of {!chunk_samples} whole samples, so
    every chunk is self-delimited, carries its own FNV trailer, and
    decodes independently — the shard unit for parallel correlation.
    Version 1 blobs (one section for the whole log) still decode. Both
    forms round-trip exactly: [of_text (to_text t)] and
    [decode (encode t)] reproduce the log byte-for-byte under
    re-serialization. *)

val magic : string
(** ["CSLG"], the binary blob prefix. *)

val chunk_samples : int
(** Default samples per v2 chunk (and per {!split} shard). *)

val to_text : t -> string

val of_text : string -> (t, Csspgo_support.Wire.error) result
(** Parse the text form; structural problems come back as
    [Error (Malformed _)]. *)

val encode : ?chunk:int -> t -> string
(** v2 blob, one section per [chunk] (default {!chunk_samples}) samples;
    chunk boundaries walk whole records, never dividing a sample. An
    empty log frames a single empty chunk.
    @raise Invalid_argument when [chunk] is not positive. *)

val decode : string -> (t, Csspgo_support.Wire.error) result
(** Decode a v1 or v2 blob into one log (chunks concatenated in frame
    order). Every section's record stream is validated against its
    declared arena before any data is returned. *)

val decode_chunks : string -> (t list, Csspgo_support.Wire.error) result
(** Like {!decode} but keeps the chunk partition: one log per section, in
    frame order — the fused drain-and-correlate path feeds these straight
    into shards without ever materializing the concatenated log. A v1
    blob yields a single chunk. *)

val framing_version : string -> (int, Csspgo_support.Wire.error) result
(** The blob's frame version (1 or 2), without decoding any payload. *)

val split : ?chunk:int -> t -> t list
(** Partition into sub-logs of [chunk] (default {!chunk_samples}) samples
    each (the last one short); [[]] for an empty log. Boundaries walk
    whole records — exactly {!encode}'s chunking — so appending the parts
    in order reproduces the log, and the partition is a pure function of
    the log's contents (never of a job count).
    @raise Invalid_argument when [chunk] is not positive. *)

val is_binary : string -> bool
(** Does the data start with {!magic}? *)
