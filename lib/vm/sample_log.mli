(** Compact, replayable PMU sample log: a flat unboxed [int array] arena
    (one record per sample: LBR length, src/tgt pairs, stack length, frame
    addresses). This is the bridge between single-pass sample streaming and
    consumers that need a second look at the stream — notably context
    reconstruction, whose missing-frame table must be complete before the
    first sample is attributed. Two orders of magnitude denser than a
    [Machine.sample list] (no per-sample arrays, no tuple boxing), and
    [Marshal]-safe for the plan cache.

    Every sample additionally carries a request {!Csspgo_support.Label_set}
    (tenant, endpoint, experiment arm). Label sets are interned per log to
    dense ids and stored as run-length (id, count) pairs over the stream, so
    stamping a sample in the steady state is a single counter bump — the
    recording path stays allocation-free. A log that never saw a label is
    one all-empty run and behaves (and frames) exactly like a pre-label
    log. *)

type t

val create : unit -> t

val add :
  t -> lbr:(int * int) array -> lbr_len:int -> stack:int array -> stack_len:int -> unit
(** Append one sample (copies the scratch contents; sink-safe). The sample
    is stamped with the log's current label set (initially empty; see
    {!set_label}). *)

val set_label : t -> Csspgo_support.Label_set.t -> unit
(** Set the label set stamped on subsequently added samples. Interns the
    set on first sight; repeat announcements of the same set are a hash
    lookup, and stamping itself never allocates. *)

val current_label : t -> Csspgo_support.Label_set.t
(** The set subsequent samples will be stamped with. *)

val sink : t -> Machine.sink
(** A recording sink: [Machine.run ~sink:(sink log)] fills [log]. The
    sink's label channel is {!set_label}, so [Machine.run ~labels] stamps
    every sample of that run. *)

val iter :
  t ->
  (lbr:(int * int) array -> lbr_len:int -> stack:int array -> stack_len:int -> unit) ->
  unit
(** Replay the log in collection order through a sink-shaped callback. The
    callback receives reusable scratch buffers, exactly like a live
    [Machine.sink] — same copy discipline applies. Labels are not
    replayed: correlation is label-blind, slicing happens on the log
    ({!slice_by_label}) before replay. *)

val to_samples : t -> Machine.sample list
(** Materialize as the historical boxed sample list (compat / bench). *)

val append : into:t -> t -> unit
(** Concatenate [src]'s record stream onto [into] (one arena blit; [src]
    is untouched). Replaying the result is replaying [into] then [src] —
    the fleet collector's per-version log reassembly primitive. Labels
    ride along: [src]'s ids are remapped through [into]'s intern table and
    its runs spliced on (merged at the boundary when the label does not
    change). *)

val n_samples : t -> int

val words : t -> int
(** Heap words used by the arena and label runs (capacity, not length). *)

val compact : t -> unit
(** Trim spare arena capacity (call before marshaling). *)

(** {1 Labels} *)

val is_labeled : t -> bool
(** Does any sample carry a non-empty label set? *)

val labels : t -> Csspgo_support.Label_set.t list
(** Distinct label sets observed, in order of first appearance in the
    stream — the deterministic slicing order. [[]] for an empty log. *)

val label_counts : t -> (Csspgo_support.Label_set.t * int) list
(** Sample count per distinct label set, in {!labels} order — the
    observed mix weights. A label-free non-empty log reports the single
    implicit slice [(empty, n_samples)]. *)

val slice_by_label : t -> (Csspgo_support.Label_set.t * t) list
(** Partition into one sub-log per distinct label set, in {!labels}
    order. Each slice's record stream preserves collection order, carries
    exactly the samples stamped with that set, and is itself labeled with
    it. The slices are a whole-sample partition of the log: appending
    sample counts reconstructs {!label_counts}, and correlating the
    slices and merging at weight 1 reconstructs the blended profile
    (oracle family 10). *)

val unlabeled : t -> t
(** A copy with the same record stream and every label dropped — what a
    pre-label collector would have recorded of the same run. *)

(** {1 Serialization}

    Two interchangeable on-disk forms share one record layout. The text
    form is the debuggable golden format: a [samplelog] header, then one
    line per sample ([lbr_len src tgt ... stack_len addr ...], ints
    space-separated); it is label-free. The binary form is a digest-framed
    {!Csspgo_support.Wire} envelope (magic ["CSLG"]): version 2 frames one
    varint-packed section per chunk of {!chunk_samples} whole samples, so
    every chunk is self-delimited, carries its own FNV trailer, and
    decodes independently — the shard unit for parallel correlation.
    Version 3 appends exactly one trailing label section (the distinct
    canonical label-set encodings in first-appearance order, then the
    (set, count) runs) to the v2 chunk sections. {!encode} picks v2 for
    label-free logs automatically, so unlabeled streams are byte-identical
    to the pre-label format; v1 blobs (one section for the whole log)
    still decode. Both forms round-trip exactly: [of_text (to_text t)] and
    [decode (encode t)] reproduce the log byte-for-byte under
    re-serialization. *)

val magic : string
(** ["CSLG"], the binary blob prefix. *)

val chunk_samples : int
(** Default samples per chunk (and per {!split} shard). *)

val tag_log : int
(** Section tag of a record chunk (1). *)

val tag_labels : int
(** Section tag of the v3 trailing label section (2). *)

val to_text : t -> string

val of_text : string -> (t, Csspgo_support.Wire.error) result
(** Parse the text form; structural problems come back as
    [Error (Malformed _)]. *)

val encode : ?chunk:int -> ?frame:[ `Auto | `V2 | `V3 ] -> t -> string
(** Binary blob, one section per [chunk] (default {!chunk_samples})
    samples; chunk boundaries walk whole records, never dividing a sample.
    An empty log frames a single empty chunk. [`Auto] (default) frames
    labeled logs as v3 and label-free logs as v2; [`V2] forces the
    pre-label framing, dropping labels (lossless exactly when the log is
    label-free — the downgrade path); [`V3] forces a label section even
    for a label-free log.
    @raise Invalid_argument when [chunk] is not positive. *)

val decode : string -> (t, Csspgo_support.Wire.error) result
(** Decode a v1, v2 or v3 blob into one log (chunks concatenated in frame
    order, labels reattached). Every section's record stream is validated
    against its declared arena, and every byte of a label section (set
    encodings canonical and distinct, run indices in range, run counts
    positive and non-mergeable, totals matching the chunk sections) is
    validated before any label is attached — corruption yields a typed
    [Wire] error, never a mislabeled sample. *)

val decode_chunks : string -> (t list, Csspgo_support.Wire.error) result
(** Like {!decode} but keeps the chunk partition: one log per section, in
    frame order — the fused drain-and-correlate path feeds these straight
    into shards without ever materializing the concatenated log. A v1
    blob yields a single chunk. Label runs are split along the chunk
    boundaries, so each chunk carries its own samples' labels. *)

val framing_version : string -> (int, Csspgo_support.Wire.error) result
(** The blob's frame version (1, 2 or 3), without decoding any payload. *)

val split : ?chunk:int -> t -> t list
(** Partition into sub-logs of [chunk] (default {!chunk_samples}) samples
    each (the last one short); [[]] for an empty log. Boundaries walk
    whole records — exactly {!encode}'s chunking — so appending the parts
    in order reproduces the log (labels included), and the partition is a
    pure function of the log's contents (never of a job count).
    @raise Invalid_argument when [chunk] is not positive. *)

val is_binary : string -> bool
(** Does the data start with {!magic}? *)
