module Label_set = Csspgo_support.Label_set

(* The record arena is exactly as before (one flat-int record per sample).
   Labels ride alongside as run-length-encoded (label id, sample count)
   pairs over the stream, plus a per-log interning table mapping dense ids
   to canonical label-set bytes. Id 0 is always the empty set, so an
   unlabeled log is one all-zero run and costs two ints total. *)
type t = {
  mutable data : int array;
  mutable len : int;
  mutable n : int;
  mutable lsets : string array;  (* id -> Label_set.canonical *)
  mutable lset_n : int;
  intern : (string, int) Hashtbl.t;
  mutable runs : int array;  (* flat (label id, count) pairs *)
  mutable runs_len : int;    (* ints used; runs always cover exactly n samples *)
  mutable cur : int;         (* label id stamped on the next sample *)
}

let create () =
  let intern = Hashtbl.create 8 in
  Hashtbl.replace intern "" 0;
  {
    data = [||];
    len = 0;
    n = 0;
    lsets = [| "" |];
    lset_n = 1;
    intern;
    runs = [||];
    runs_len = 0;
    cur = 0;
  }

let ensure t extra =
  let need = t.len + extra in
  if need > Array.length t.data then begin
    let a = Array.make (max need (max 256 (2 * Array.length t.data))) 0 in
    Array.blit t.data 0 a 0 t.len;
    t.data <- a
  end

let intern_canonical t canon =
  match Hashtbl.find_opt t.intern canon with
  | Some id -> id
  | None ->
      let id = t.lset_n in
      if id >= Array.length t.lsets then begin
        let a = Array.make (max 4 (2 * Array.length t.lsets)) "" in
        Array.blit t.lsets 0 a 0 t.lset_n;
        t.lsets <- a
      end;
      t.lsets.(id) <- canon;
      t.lset_n <- id + 1;
      Hashtbl.replace t.intern canon id;
      id

let set_label t ls = t.cur <- intern_canonical t (Label_set.canonical ls)
let current_label t = Label_set.of_canonical t.lsets.(t.cur)

let ensure_runs t extra =
  let need = t.runs_len + extra in
  if need > Array.length t.runs then begin
    let a = Array.make (max need (max 16 (2 * Array.length t.runs))) 0 in
    Array.blit t.runs 0 a 0 t.runs_len;
    t.runs <- a
  end

(* Stamp one sample with [id]: extend the last run in place when the label
   has not changed (the zero-allocation steady state), else open a run. *)
let stamp t id =
  if t.runs_len >= 2 && t.runs.(t.runs_len - 2) = id then
    t.runs.(t.runs_len - 1) <- t.runs.(t.runs_len - 1) + 1
  else begin
    ensure_runs t 2;
    t.runs.(t.runs_len) <- id;
    t.runs.(t.runs_len + 1) <- 1;
    t.runs_len <- t.runs_len + 2
  end

let add t ~lbr ~lbr_len ~stack ~stack_len =
  ensure t (2 + (2 * lbr_len) + stack_len);
  let d = t.data in
  let p = ref t.len in
  d.(!p) <- lbr_len;
  incr p;
  for i = 0 to lbr_len - 1 do
    let src, tgt = lbr.(i) in
    d.(!p) <- src;
    d.(!p + 1) <- tgt;
    p := !p + 2
  done;
  d.(!p) <- stack_len;
  incr p;
  for i = 0 to stack_len - 1 do
    d.(!p) <- stack.(i);
    incr p
  done;
  t.len <- !p;
  t.n <- t.n + 1;
  stamp t t.cur

let sink t =
  {
    Machine.on_sample =
      (fun ~lbr ~lbr_len ~stack ~stack_len -> add t ~lbr ~lbr_len ~stack ~stack_len);
    on_labels = set_label t;
  }

let iter t f =
  let lbr = ref (Array.make 16 (0, 0)) in
  let stack = ref (Array.make 64 0) in
  let d = t.data in
  let p = ref 0 in
  for _ = 1 to t.n do
    let ln = d.(!p) in
    incr p;
    if ln > Array.length !lbr then lbr := Array.make (max ln (2 * Array.length !lbr)) (0, 0);
    let lb = !lbr in
    for i = 0 to ln - 1 do
      lb.(i) <- (d.(!p), d.(!p + 1));
      p := !p + 2
    done;
    let sn = d.(!p) in
    incr p;
    if sn > Array.length !stack then
      stack := Array.make (max sn (2 * Array.length !stack)) 0;
    let sb = !stack in
    for i = 0 to sn - 1 do
      sb.(i) <- d.(!p);
      incr p
    done;
    f ~lbr:lb ~lbr_len:ln ~stack:sb ~stack_len:sn
  done

let to_samples t =
  let out = ref [] in
  iter t (fun ~lbr ~lbr_len ~stack ~stack_len ->
      out :=
        { Machine.s_lbr = Array.sub lbr 0 lbr_len; s_stack = Array.sub stack 0 stack_len }
        :: !out);
  List.rev !out

(* Append [extra] run ints from [runs] (id already remapped into [into]),
   merging the boundary when the label does not change. *)
let append_runs into runs lo extra =
  let i = ref lo in
  let stop = lo + extra in
  while !i < stop do
    let id = runs.(!i) and cnt = runs.(!i + 1) in
    if into.runs_len >= 2 && into.runs.(into.runs_len - 2) = id then
      into.runs.(into.runs_len - 1) <- into.runs.(into.runs_len - 1) + cnt
    else begin
      ensure_runs into 2;
      into.runs.(into.runs_len) <- id;
      into.runs.(into.runs_len + 1) <- cnt;
      into.runs_len <- into.runs_len + 2
    end;
    i := !i + 2
  done

let append ~into src =
  ensure into src.len;
  Array.blit src.data 0 into.data into.len src.len;
  into.len <- into.len + src.len;
  into.n <- into.n + src.n;
  (* Remap the source's label ids through [into]'s interning table, then
     splice its runs — replaying the result is replaying [into] then
     [src], labels included. *)
  let remapped = Array.make src.runs_len 0 in
  let i = ref 0 in
  while !i < src.runs_len do
    remapped.(!i) <- intern_canonical into src.lsets.(src.runs.(!i));
    remapped.(!i + 1) <- src.runs.(!i + 1);
    i := !i + 2
  done;
  append_runs into remapped 0 src.runs_len

let n_samples t = t.n
let words t = Array.length t.data + Array.length t.runs + 4

let compact t =
  if Array.length t.data > t.len then t.data <- Array.sub t.data 0 t.len;
  if Array.length t.runs > t.runs_len then t.runs <- Array.sub t.runs 0 t.runs_len

(* --- labels ---------------------------------------------------------- *)

let is_labeled t =
  let rec go i = i < t.runs_len && (t.runs.(i) <> 0 || go (i + 2)) in
  go 0

(* Distinct label ids in order of first appearance in the run stream —
   the canonical on-disk (and therefore cross-log deterministic) label
   order; interning order is not observable. *)
let used_ids t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let i = ref 0 in
  while !i < t.runs_len do
    let id = t.runs.(!i) in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      out := id :: !out
    end;
    i := !i + 2
  done;
  List.rev !out

let labels t = List.map (fun id -> Label_set.of_canonical t.lsets.(id)) (used_ids t)

let label_counts t =
  let counts = Hashtbl.create 8 in
  let i = ref 0 in
  while !i < t.runs_len do
    let id = t.runs.(!i) in
    Hashtbl.replace counts id
      (t.runs.(!i + 1) + Option.value (Hashtbl.find_opt counts id) ~default:0);
    i := !i + 2
  done;
  List.map
    (fun id -> (Label_set.of_canonical t.lsets.(id), Hashtbl.find counts id))
    (used_ids t)

(* Advance [p] past [count] whole records of [data]. All chunk/shard
   boundaries come from this walk, so a boundary can never divide a
   sample. *)
let walk_records data p count =
  for _ = 1 to count do
    let ln = data.(!p) in
    p := !p + 1 + (2 * ln);
    let sn = data.(!p) in
    p := !p + 1 + sn
  done

(* The run sub-sequence covering samples [first, first + count) as a fresh
   flat (id, count) array — the label counterpart of a record-walk slice. *)
let runs_window t first count =
  let out = ref [] in
  let pos = ref 0 in
  let i = ref 0 in
  while !i < t.runs_len && !pos < first + count do
    let id = t.runs.(!i) and cnt = t.runs.(!i + 1) in
    let lo = max !pos first and hi = min (!pos + cnt) (first + count) in
    if hi > lo then out := (id, hi - lo) :: !out;
    pos := !pos + cnt;
    i := !i + 2
  done;
  let lst = List.rev !out in
  let a = Array.make (2 * List.length lst) 0 in
  List.iteri
    (fun j (id, cnt) ->
      a.(2 * j) <- id;
      a.((2 * j) + 1) <- cnt)
    lst;
  a

let slice_by_label t =
  let ids = used_ids t in
  let slices =
    List.map
      (fun id ->
        let s = create () in
        set_label s (Label_set.of_canonical t.lsets.(id));
        (id, s))
      ids
  in
  (* One walk over records and runs together routes each sample's record
     bytes into its label's slice log. *)
  let p = ref 0 in
  let i = ref 0 in
  while !i < t.runs_len do
    let id = t.runs.(!i) and cnt = t.runs.(!i + 1) in
    let start = !p in
    walk_records t.data p cnt;
    let s = List.assoc id slices in
    ensure s (!p - start);
    Array.blit t.data start s.data s.len (!p - start);
    s.len <- s.len + (!p - start);
    s.n <- s.n + cnt;
    for _ = 1 to cnt do
      stamp s s.cur
    done;
    i := !i + 2
  done;
  List.map
    (fun (id, s) -> (Label_set.of_canonical t.lsets.(id), s))
    slices

let unlabeled t =
  let u = create () in
  u.data <- Array.copy t.data;
  u.len <- t.len;
  u.n <- t.n;
  if t.n > 0 then begin
    ensure_runs u 2;
    u.runs.(0) <- 0;
    u.runs.(1) <- t.n;
    u.runs_len <- 2
  end;
  u

(* ------------------------------------------------------------------ *)
(* Serialization. Both forms carry the arena's record stream verbatim
   (lbr_len, pairs, stack_len, addrs — one record per sample), so a
   decoded log replays the identical sample stream. The text form is
   label-free (labels are a binary-framing concern); v3 blobs add one
   label section. *)

module Wire = Csspgo_support.Wire

let magic = "CSLG"
let version = 3
let tag_log = 1
let tag_labels = 2
let chunk_samples = 4096

let to_text t =
  let buf = Buffer.create (16 * t.n) in
  Buffer.add_string buf (Printf.sprintf "samplelog %d\n" t.n);
  let p = ref 0 in
  let d = t.data in
  for _ = 1 to t.n do
    let ln = d.(!p) in
    Buffer.add_string buf (string_of_int ln);
    incr p;
    for _ = 1 to 2 * ln do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int d.(!p));
      incr p
    done;
    let sn = d.(!p) in
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int sn);
    incr p;
    for _ = 1 to sn do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int d.(!p));
      incr p
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Rebuild through [add] so arena growth (and thus [words]/marshaling)
   matches a live recording of the same stream. *)
let rebuild records =
  let t = create () in
  List.iter
    (fun (lbr, stack) ->
      add t ~lbr ~lbr_len:(Array.length lbr) ~stack ~stack_len:(Array.length stack))
    (List.rev records);
  t

let of_text s =
  let malformed what = Error (Wire.Malformed what) in
  match String.split_on_char '\n' s with
  | [] -> malformed "empty sample log"
  | header :: lines -> (
      match String.split_on_char ' ' header with
      | [ "samplelog"; n ] -> (
          match int_of_string_opt n with
          | None -> malformed "bad sample count in samplelog header"
          | Some n when n < 0 -> malformed "negative sample count"
          | Some n -> (
              let records = ref [] in
              let bad = ref None in
              let nrec = ref 0 in
              List.iteri
                (fun i line ->
                  if !bad = None && not (String.equal line "") then begin
                    let ints =
                      String.split_on_char ' ' line
                      |> List.filter (fun w -> not (String.equal w ""))
                      |> List.map int_of_string_opt
                    in
                    if List.exists Option.is_none ints then
                      bad := Some (Printf.sprintf "bad integer on line %d" (i + 2))
                    else
                      let ints = List.filter_map Fun.id ints in
                      match ints with
                      | ln :: rest when ln >= 0 && List.length rest >= 2 * ln -> (
                          let lbr = Array.make (max ln 1) (0, 0) in
                          let rest = ref rest in
                          for j = 0 to ln - 1 do
                            match !rest with
                            | src :: tgt :: r ->
                                lbr.(j) <- (src, tgt);
                                rest := r
                            | _ -> assert false
                          done;
                          match !rest with
                          | sn :: addrs when sn >= 0 && List.length addrs = sn ->
                              incr nrec;
                              records :=
                                (Array.sub lbr 0 ln, Array.of_list addrs) :: !records
                          | _ ->
                              bad :=
                                Some
                                  (Printf.sprintf "bad stack record on line %d" (i + 2)))
                      | _ ->
                          bad :=
                            Some (Printf.sprintf "bad LBR record on line %d" (i + 2))
                  end)
                lines;
              match !bad with
              | Some what -> malformed what
              | None ->
                  if !nrec <> n then
                    malformed
                      (Printf.sprintf "header declares %d samples, found %d" n !nrec)
                  else Ok (rebuild !records)))
      | _ -> malformed "missing samplelog header")

(* v2 framing: one envelope section per chunk of [chunk] samples, each
   section varint-packed exactly like the single v1 section (sample count,
   arena length, arena words). The envelope already gives every section
   its own FNV trailer and length prefix, so chunks are self-delimited and
   independently decodable — the shard unit for parallel correlation. An
   empty log frames one empty chunk so every blob has at least one
   section.

   v3 framing appends one label section after the chunks: the distinct
   canonical label-set encodings referenced by the run stream, in order of
   first appearance, then the (set index, sample count) runs themselves.
   An unlabeled log frames as plain v2 by default, so label-free streams
   are byte-identical to the pre-label format — and a forced-v3 blob of
   an unlabeled stream decodes and re-frames back to those very v2 bytes
   (the lossless downgrade). *)
let label_section t =
  let ids = used_ids t in
  let index = Hashtbl.create 8 in
  List.iteri (fun i id -> Hashtbl.replace index id i) ids;
  let e = Wire.Enc.create () in
  Wire.Enc.varint e (List.length ids);
  List.iter (fun id -> Wire.Enc.string e t.lsets.(id)) ids;
  Wire.Enc.varint e (t.runs_len / 2);
  let i = ref 0 in
  while !i < t.runs_len do
    Wire.Enc.varint e (Hashtbl.find index t.runs.(!i));
    Wire.Enc.varint e t.runs.(!i + 1);
    i := !i + 2
  done;
  Wire.Enc.contents e

let encode ?(chunk = chunk_samples) ?(frame = `Auto) t =
  if chunk <= 0 then invalid_arg "Sample_log.encode: chunk must be positive";
  let v =
    match frame with
    | `Auto -> if is_labeled t then 3 else 2
    | `V2 -> 2
    | `V3 -> 3
  in
  let sections = ref [] in
  let p = ref 0 in
  let remaining = ref t.n in
  let emit n0 start stop =
    let e = Wire.Enc.create () in
    Wire.Enc.varint e n0;
    Wire.Enc.varint e (stop - start);
    for i = start to stop - 1 do
      Wire.Enc.varint e t.data.(i)
    done;
    sections := (tag_log, Wire.Enc.contents e) :: !sections
  in
  if t.n = 0 then emit 0 0 0
  else
    while !remaining > 0 do
      let n0 = min chunk !remaining in
      let start = !p in
      walk_records t.data p n0;
      emit n0 start !p;
      remaining := !remaining - n0
    done;
  if v = 3 then sections := (tag_labels, label_section t) :: !sections;
  Wire.frame ~magic ~version:v (List.rev !sections)

(* One varint-packed chunk payload -> a log. Framing is already validated
   by the envelope; this checks the declared record structure walks the
   declared arena exactly (a well-digested section can still carry an
   inconsistent record stream). *)
let decode_section payload =
  let d = Wire.Dec.of_string payload in
  let n = Wire.Dec.varint d in
  let len = Wire.Dec.varint d in
  if n < 0 || len < 0 then raise (Wire.Error (Wire.Malformed "negative log size"));
  let data = Array.make (max len 1) 0 in
  Wire.Dec.varint_into d data len;
  let data = if len = 0 then [||] else data in
  if not (Wire.Dec.at_end d) then
    raise (Wire.Error (Wire.Malformed "trailing bytes in log section"));
  let overrun () =
    raise (Wire.Error (Wire.Malformed "record stream overruns arena"))
  in
  let p = ref 0 in
  for _ = 1 to n do
    if !p >= len then overrun ();
    let ln = data.(!p) in
    if ln < 0 || ln > len then raise (Wire.Error (Wire.Malformed "bad LBR length"));
    p := !p + 1 + (2 * ln);
    if !p >= len then overrun ();
    let sn = data.(!p) in
    if sn < 0 || sn > len then
      raise (Wire.Error (Wire.Malformed "bad stack length"));
    p := !p + 1 + sn
  done;
  if !p <> len then
    raise (Wire.Error (Wire.Malformed "record stream does not cover arena"));
  let t = create () in
  t.data <- data;
  t.len <- len;
  t.n <- n;
  if n > 0 then begin
    ensure_runs t 2;
    t.runs.(0) <- 0;
    t.runs.(1) <- n;
    t.runs_len <- 2
  end;
  t

(* The v3 label section -> (canonical set strings, flat run array). Every
   byte is checked before any label is attached to a sample: junk set
   encodings, duplicate table entries, out-of-range indices, zero-count or
   adjacent-equal runs, and run totals that disagree with the chunk
   sections are all typed [Wire] errors — corruption can fail a decode,
   never mislabel a sample. *)
let decode_label_section ~total payload =
  let d = Wire.Dec.of_string payload in
  let nsets = Wire.Dec.varint d in
  if nsets < 0 || nsets > total + 1 then
    raise (Wire.Error (Wire.Malformed "bad label-set count"));
  let sets = Array.init nsets (fun _ -> Wire.Dec.string d) in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      ignore (Label_set.of_canonical s);
      if Hashtbl.mem seen s then
        raise (Wire.Error (Wire.Malformed "duplicate label set in table"));
      Hashtbl.replace seen s ())
    sets;
  let nruns = Wire.Dec.varint d in
  if nruns < 0 || nruns > total then
    raise (Wire.Error (Wire.Malformed "bad label-run count"));
  let runs = Array.make (2 * nruns) 0 in
  let covered = ref 0 in
  for i = 0 to nruns - 1 do
    let idx = Wire.Dec.varint d in
    let cnt = Wire.Dec.varint d in
    if idx < 0 || idx >= nsets then
      raise (Wire.Error (Wire.Malformed "label run references unknown set"));
    if cnt <= 0 then raise (Wire.Error (Wire.Malformed "empty label run"));
    if i > 0 && runs.(2 * (i - 1)) = idx then
      raise (Wire.Error (Wire.Malformed "adjacent label runs with equal set"));
    runs.(2 * i) <- idx;
    runs.((2 * i) + 1) <- cnt;
    covered := !covered + cnt
  done;
  if not (Wire.Dec.at_end d) then
    raise (Wire.Error (Wire.Malformed "trailing bytes in label section"));
  if !covered <> total then
    raise
      (Wire.Error
         (Wire.Malformed
            (Printf.sprintf "label runs cover %d of %d samples" !covered total)));
  (sets, runs)

(* Attach a decoded label table to [t] (whose runs are the implicit
   all-empty run): intern each section set and rewrite the run stream. *)
let attach_labels t (sets, runs) =
  let ids = Array.map (intern_canonical t) sets in
  t.runs <- [||];
  t.runs_len <- 0;
  let i = ref 0 in
  while !i < Array.length runs do
    ensure_runs t 2;
    t.runs.(t.runs_len) <- ids.(runs.(!i));
    t.runs.(t.runs_len + 1) <- runs.(!i + 1);
    t.runs_len <- t.runs_len + 2;
    i := !i + 2
  done

(* Decode every section of a blob, version-dispatched: v1 blobs must carry
   exactly one log section, v2 one log section per chunk, v3 the v2 chunk
   sections followed by exactly one trailing label section. *)
let decode_sections s =
  match Wire.unframe ~magic ~max_version:version s with
  | Error e -> Error e
  | Ok (v, sections) -> (
      try
        let log_sections, label_payload =
          match (v, List.rev sections) with
          | 3, (tag, payload) :: rest when tag = tag_labels ->
              (List.rev rest, Some payload)
          | 3, _ ->
              raise
                (Wire.Error (Wire.Malformed "v3 blob missing trailing label section"))
          | _, _ -> (sections, None)
        in
        let parts =
          List.map
            (fun (tag, payload) ->
              if tag <> tag_log then
                raise
                  (Wire.Error
                     (Wire.Malformed (Printf.sprintf "unknown section tag %d" tag)));
              decode_section payload)
            log_sections
        in
        let parts =
          match (v, parts) with
          | _, [] -> raise (Wire.Error (Wire.Malformed "no log sections"))
          | 1, [ part ] -> [ part ]
          | 1, _ ->
              raise
                (Wire.Error
                   (Wire.Malformed
                      (Printf.sprintf "expected exactly one log section, got %d"
                         (List.length parts))))
          | _, parts -> parts
        in
        let labels =
          match label_payload with
          | None -> None
          | Some payload ->
              let total =
                List.fold_left (fun acc part -> acc + part.n) 0 parts
              in
              Some (decode_label_section ~total payload)
        in
        Ok (parts, labels)
      with Wire.Error e -> Error e)

let concat_parts = function
  | [ t ] -> t
  | parts ->
      let out = create () in
      List.iter (fun p -> append ~into:out p) parts;
      out.cur <- 0;
      out

(* Split a decoded label run stream along the chunk partition, attaching
   each chunk its own window of the runs. *)
let distribute_labels parts (sets, runs) =
  let holder = create () in
  holder.n <- List.fold_left (fun acc p -> acc + p.n) 0 parts;
  attach_labels holder (sets, runs);
  let first = ref 0 in
  List.map
    (fun part ->
      let w = runs_window holder !first part.n in
      (* Remap holder ids back to canonical strings, then into the part. *)
      let i = ref 0 in
      part.runs <- [||];
      part.runs_len <- 0;
      while !i < Array.length w do
        ensure_runs part 2;
        part.runs.(part.runs_len) <-
          intern_canonical part holder.lsets.(w.(!i));
        part.runs.(part.runs_len + 1) <- w.(!i + 1);
        part.runs_len <- part.runs_len + 2;
        i := !i + 2
      done;
      first := !first + part.n;
      part)
    parts

let decode s =
  match decode_sections s with
  | Error e -> Error e
  | Ok (parts, labels) -> (
      let log = concat_parts parts in
      match labels with
      | None -> Ok log
      | Some lab ->
          (try
             attach_labels log lab;
             Ok log
           with Wire.Error e -> Error e))

let decode_chunks s =
  match decode_sections s with
  | Error e -> Error e
  | Ok (parts, None) -> Ok parts
  | Ok (parts, Some lab) -> (
      try Ok (distribute_labels parts lab) with Wire.Error e -> Error e)

let framing_version s =
  Result.map fst (Wire.unframe ~magic ~max_version:version s)

let split ?(chunk = chunk_samples) t =
  if chunk <= 0 then invalid_arg "Sample_log.split: chunk must be positive";
  let out = ref [] in
  let p = ref 0 in
  let remaining = ref t.n in
  let first = ref 0 in
  while !remaining > 0 do
    let n0 = min chunk !remaining in
    let start = !p in
    walk_records t.data p n0;
    let part = create () in
    part.data <- Array.sub t.data start (!p - start);
    part.len <- !p - start;
    part.n <- n0;
    let w = runs_window t !first n0 in
    let i = ref 0 in
    while !i < Array.length w do
      ensure_runs part 2;
      part.runs.(part.runs_len) <- intern_canonical part t.lsets.(w.(!i));
      part.runs.(part.runs_len + 1) <- w.(!i + 1);
      part.runs_len <- part.runs_len + 2;
      i := !i + 2
    done;
    out := part :: !out;
    remaining := !remaining - n0;
    first := !first + n0
  done;
  List.rev !out

let is_binary s = Wire.sniff ~magic s
