type t = {
  mutable data : int array;
  mutable len : int;
  mutable n : int;
}

let create () = { data = [||]; len = 0; n = 0 }

let ensure t extra =
  let need = t.len + extra in
  if need > Array.length t.data then begin
    let a = Array.make (max need (max 256 (2 * Array.length t.data))) 0 in
    Array.blit t.data 0 a 0 t.len;
    t.data <- a
  end

let add t ~lbr ~lbr_len ~stack ~stack_len =
  ensure t (2 + (2 * lbr_len) + stack_len);
  let d = t.data in
  let p = ref t.len in
  d.(!p) <- lbr_len;
  incr p;
  for i = 0 to lbr_len - 1 do
    let src, tgt = lbr.(i) in
    d.(!p) <- src;
    d.(!p + 1) <- tgt;
    p := !p + 2
  done;
  d.(!p) <- stack_len;
  incr p;
  for i = 0 to stack_len - 1 do
    d.(!p) <- stack.(i);
    incr p
  done;
  t.len <- !p;
  t.n <- t.n + 1

let sink t =
  {
    Machine.on_sample =
      (fun ~lbr ~lbr_len ~stack ~stack_len -> add t ~lbr ~lbr_len ~stack ~stack_len);
  }

let iter t f =
  let lbr = ref (Array.make 16 (0, 0)) in
  let stack = ref (Array.make 64 0) in
  let d = t.data in
  let p = ref 0 in
  for _ = 1 to t.n do
    let ln = d.(!p) in
    incr p;
    if ln > Array.length !lbr then lbr := Array.make (max ln (2 * Array.length !lbr)) (0, 0);
    let lb = !lbr in
    for i = 0 to ln - 1 do
      lb.(i) <- (d.(!p), d.(!p + 1));
      p := !p + 2
    done;
    let sn = d.(!p) in
    incr p;
    if sn > Array.length !stack then
      stack := Array.make (max sn (2 * Array.length !stack)) 0;
    let sb = !stack in
    for i = 0 to sn - 1 do
      sb.(i) <- d.(!p);
      incr p
    done;
    f ~lbr:lb ~lbr_len:ln ~stack:sb ~stack_len:sn
  done

let to_samples t =
  let out = ref [] in
  iter t (fun ~lbr ~lbr_len ~stack ~stack_len ->
      out :=
        { Machine.s_lbr = Array.sub lbr 0 lbr_len; s_stack = Array.sub stack 0 stack_len }
        :: !out);
  List.rev !out

let append ~into src =
  ensure into src.len;
  Array.blit src.data 0 into.data into.len src.len;
  into.len <- into.len + src.len;
  into.n <- into.n + src.n

let n_samples t = t.n
let words t = Array.length t.data + 4

let compact t =
  if Array.length t.data > t.len then t.data <- Array.sub t.data 0 t.len

(* ------------------------------------------------------------------ *)
(* Serialization. Both forms carry the arena's record stream verbatim
   (lbr_len, pairs, stack_len, addrs — one record per sample), so a
   decoded log replays the identical sample stream.                    *)

module Wire = Csspgo_support.Wire

let magic = "CSLG"
let version = 2
let tag_log = 1
let chunk_samples = 4096

(* Advance [p] past [count] whole records of [data]. All chunk/shard
   boundaries come from this walk, so a boundary can never divide a
   sample. *)
let walk_records data p count =
  for _ = 1 to count do
    let ln = data.(!p) in
    p := !p + 1 + (2 * ln);
    let sn = data.(!p) in
    p := !p + 1 + sn
  done

let to_text t =
  let buf = Buffer.create (16 * t.n) in
  Buffer.add_string buf (Printf.sprintf "samplelog %d\n" t.n);
  let p = ref 0 in
  let d = t.data in
  for _ = 1 to t.n do
    let ln = d.(!p) in
    Buffer.add_string buf (string_of_int ln);
    incr p;
    for _ = 1 to 2 * ln do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int d.(!p));
      incr p
    done;
    let sn = d.(!p) in
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int sn);
    incr p;
    for _ = 1 to sn do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int d.(!p));
      incr p
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Rebuild through [add] so arena growth (and thus [words]/marshaling)
   matches a live recording of the same stream. *)
let rebuild records =
  let t = create () in
  List.iter
    (fun (lbr, stack) ->
      add t ~lbr ~lbr_len:(Array.length lbr) ~stack ~stack_len:(Array.length stack))
    (List.rev records);
  t

let of_text s =
  let malformed what = Error (Wire.Malformed what) in
  match String.split_on_char '\n' s with
  | [] -> malformed "empty sample log"
  | header :: lines -> (
      match String.split_on_char ' ' header with
      | [ "samplelog"; n ] -> (
          match int_of_string_opt n with
          | None -> malformed "bad sample count in samplelog header"
          | Some n when n < 0 -> malformed "negative sample count"
          | Some n -> (
              let records = ref [] in
              let bad = ref None in
              let nrec = ref 0 in
              List.iteri
                (fun i line ->
                  if !bad = None && not (String.equal line "") then begin
                    let ints =
                      String.split_on_char ' ' line
                      |> List.filter (fun w -> not (String.equal w ""))
                      |> List.map int_of_string_opt
                    in
                    if List.exists Option.is_none ints then
                      bad := Some (Printf.sprintf "bad integer on line %d" (i + 2))
                    else
                      let ints = List.filter_map Fun.id ints in
                      match ints with
                      | ln :: rest when ln >= 0 && List.length rest >= 2 * ln -> (
                          let lbr = Array.make (max ln 1) (0, 0) in
                          let rest = ref rest in
                          for j = 0 to ln - 1 do
                            match !rest with
                            | src :: tgt :: r ->
                                lbr.(j) <- (src, tgt);
                                rest := r
                            | _ -> assert false
                          done;
                          match !rest with
                          | sn :: addrs when sn >= 0 && List.length addrs = sn ->
                              incr nrec;
                              records :=
                                (Array.sub lbr 0 ln, Array.of_list addrs) :: !records
                          | _ ->
                              bad :=
                                Some
                                  (Printf.sprintf "bad stack record on line %d" (i + 2)))
                      | _ ->
                          bad :=
                            Some (Printf.sprintf "bad LBR record on line %d" (i + 2))
                  end)
                lines;
              match !bad with
              | Some what -> malformed what
              | None ->
                  if !nrec <> n then
                    malformed
                      (Printf.sprintf "header declares %d samples, found %d" n !nrec)
                  else Ok (rebuild !records)))
      | _ -> malformed "missing samplelog header")

(* v2 framing: one envelope section per chunk of [chunk] samples, each
   section varint-packed exactly like the single v1 section (sample count,
   arena length, arena words). The envelope already gives every section
   its own FNV trailer and length prefix, so chunks are self-delimited and
   independently decodable — the shard unit for parallel correlation. An
   empty log frames one empty chunk so every blob has at least one
   section. *)
let encode ?(chunk = chunk_samples) t =
  if chunk <= 0 then invalid_arg "Sample_log.encode: chunk must be positive";
  let sections = ref [] in
  let p = ref 0 in
  let remaining = ref t.n in
  let emit n0 start stop =
    let e = Wire.Enc.create () in
    Wire.Enc.varint e n0;
    Wire.Enc.varint e (stop - start);
    for i = start to stop - 1 do
      Wire.Enc.varint e t.data.(i)
    done;
    sections := (tag_log, Wire.Enc.contents e) :: !sections
  in
  if t.n = 0 then emit 0 0 0
  else
    while !remaining > 0 do
      let n0 = min chunk !remaining in
      let start = !p in
      walk_records t.data p n0;
      emit n0 start !p;
      remaining := !remaining - n0
    done;
  Wire.frame ~magic ~version (List.rev !sections)

(* One varint-packed chunk payload -> a log. Framing is already validated
   by the envelope; this checks the declared record structure walks the
   declared arena exactly (a well-digested section can still carry an
   inconsistent record stream). *)
let decode_section payload =
  let d = Wire.Dec.of_string payload in
  let n = Wire.Dec.varint d in
  let len = Wire.Dec.varint d in
  if n < 0 || len < 0 then raise (Wire.Error (Wire.Malformed "negative log size"));
  let data = Array.make (max len 1) 0 in
  Wire.Dec.varint_into d data len;
  let data = if len = 0 then [||] else data in
  if not (Wire.Dec.at_end d) then
    raise (Wire.Error (Wire.Malformed "trailing bytes in log section"));
  let overrun () =
    raise (Wire.Error (Wire.Malformed "record stream overruns arena"))
  in
  let p = ref 0 in
  for _ = 1 to n do
    if !p >= len then overrun ();
    let ln = data.(!p) in
    if ln < 0 || ln > len then raise (Wire.Error (Wire.Malformed "bad LBR length"));
    p := !p + 1 + (2 * ln);
    if !p >= len then overrun ();
    let sn = data.(!p) in
    if sn < 0 || sn > len then
      raise (Wire.Error (Wire.Malformed "bad stack length"));
    p := !p + 1 + sn
  done;
  if !p <> len then
    raise (Wire.Error (Wire.Malformed "record stream does not cover arena"));
  { data; len; n }

(* Decode every section of a blob as a chunk, version-dispatched: v1 blobs
   must carry exactly one log section, v2 blobs one section per chunk. *)
let decode_sections s =
  match Wire.unframe ~magic ~max_version:version s with
  | Error e -> Error e
  | Ok (v, sections) -> (
      try
        let parts =
          List.map
            (fun (tag, payload) ->
              if tag <> tag_log then
                raise
                  (Wire.Error
                     (Wire.Malformed (Printf.sprintf "unknown section tag %d" tag)));
              decode_section payload)
            sections
        in
        match (v, parts) with
        | _, [] -> Error (Wire.Malformed "no log sections")
        | 1, [ part ] -> Ok [ part ]
        | 1, _ ->
            Error
              (Wire.Malformed
                 (Printf.sprintf "expected exactly one log section, got %d"
                    (List.length parts)))
        | _, parts -> Ok parts
      with Wire.Error e -> Error e)

let concat_parts = function
  | [ t ] -> t
  | parts ->
      let len = List.fold_left (fun acc t -> acc + t.len) 0 parts in
      let n = List.fold_left (fun acc t -> acc + t.n) 0 parts in
      let data = if len = 0 then [||] else Array.make len 0 in
      let p = ref 0 in
      List.iter
        (fun t ->
          Array.blit t.data 0 data !p t.len;
          p := !p + t.len)
        parts;
      { data; len; n }

let decode s = Result.map concat_parts (decode_sections s)

let decode_chunks s = decode_sections s

let framing_version s =
  Result.map fst (Wire.unframe ~magic ~max_version:version s)

let split ?(chunk = chunk_samples) t =
  if chunk <= 0 then invalid_arg "Sample_log.split: chunk must be positive";
  let out = ref [] in
  let p = ref 0 in
  let remaining = ref t.n in
  while !remaining > 0 do
    let n0 = min chunk !remaining in
    let start = !p in
    walk_records t.data p n0;
    out :=
      { data = Array.sub t.data start (!p - start); len = !p - start; n = n0 }
      :: !out;
    remaining := !remaining - n0
  done;
  List.rev !out

let is_binary s = Wire.sniff ~magic s
