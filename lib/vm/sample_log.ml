type t = {
  mutable data : int array;
  mutable len : int;
  mutable n : int;
}

let create () = { data = [||]; len = 0; n = 0 }

let ensure t extra =
  let need = t.len + extra in
  if need > Array.length t.data then begin
    let a = Array.make (max need (max 256 (2 * Array.length t.data))) 0 in
    Array.blit t.data 0 a 0 t.len;
    t.data <- a
  end

let add t ~lbr ~lbr_len ~stack ~stack_len =
  ensure t (2 + (2 * lbr_len) + stack_len);
  let d = t.data in
  let p = ref t.len in
  d.(!p) <- lbr_len;
  incr p;
  for i = 0 to lbr_len - 1 do
    let src, tgt = lbr.(i) in
    d.(!p) <- src;
    d.(!p + 1) <- tgt;
    p := !p + 2
  done;
  d.(!p) <- stack_len;
  incr p;
  for i = 0 to stack_len - 1 do
    d.(!p) <- stack.(i);
    incr p
  done;
  t.len <- !p;
  t.n <- t.n + 1

let sink t =
  {
    Machine.on_sample =
      (fun ~lbr ~lbr_len ~stack ~stack_len -> add t ~lbr ~lbr_len ~stack ~stack_len);
  }

let iter t f =
  let lbr = ref (Array.make 16 (0, 0)) in
  let stack = ref (Array.make 64 0) in
  let d = t.data in
  let p = ref 0 in
  for _ = 1 to t.n do
    let ln = d.(!p) in
    incr p;
    if ln > Array.length !lbr then lbr := Array.make (max ln (2 * Array.length !lbr)) (0, 0);
    let lb = !lbr in
    for i = 0 to ln - 1 do
      lb.(i) <- (d.(!p), d.(!p + 1));
      p := !p + 2
    done;
    let sn = d.(!p) in
    incr p;
    if sn > Array.length !stack then
      stack := Array.make (max sn (2 * Array.length !stack)) 0;
    let sb = !stack in
    for i = 0 to sn - 1 do
      sb.(i) <- d.(!p);
      incr p
    done;
    f ~lbr:lb ~lbr_len:ln ~stack:sb ~stack_len:sn
  done

let to_samples t =
  let out = ref [] in
  iter t (fun ~lbr ~lbr_len ~stack ~stack_len ->
      out :=
        { Machine.s_lbr = Array.sub lbr 0 lbr_len; s_stack = Array.sub stack 0 stack_len }
        :: !out);
  List.rev !out

let n_samples t = t.n
let words t = Array.length t.data + 4

let compact t =
  if Array.length t.data > t.len then t.data <- Array.sub t.data 0 t.len
