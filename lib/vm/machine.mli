(** The VMC executor with a Skylake-flavoured performance and PMU model.

    Cost model (cycles): ALU 1 (mul 3, div/rem 20 — 4 when the divisor is a
    compile-time constant), memory 3, spill traffic 1 (L1-resident,
    store-forwarded), select/mov 1, call 14 / tail-call 10 (+1 per
    spill-slot argument), ret 5, taken
    jump +2, indirect switch +4, instrumentation counter increment 5, i-cache
    miss +20 (direct-mapped, 32 KiB, 64 B lines).

    PMU model: a sample fires every [sample_period] cycles. Each sample
    snapshots the LBR ring (last [lbr_depth] *taken* branches, including
    calls and returns, as source/target address pairs) and walks the frame
    chain for a synchronized stack sample. Without [pebs], the stack lags
    the LBR by one control transfer with probability [skid_prob] — the
    sampling-skid artifact of §III.B. Frames entered through tail calls
    replace their caller, so the caller is missing from the walk (the
    TCE missing-frame problem). *)

type pmu = {
  sample_period : int;  (** cycles between samples; 0 disables sampling *)
  lbr_depth : int;      (** 16 or 32 *)
  pebs : bool;
  skid_prob : float;
  seed : int64;
}

val default_pmu : pmu
(** period 9973 (prime, to avoid lockstep), depth 16, PEBS on. *)

type sample = {
  s_lbr : (int * int) array;  (** oldest first; (branch addr, target addr) *)
  s_stack : int array;        (** leaf first: ip, then return addresses *)
}

type sink = {
  on_sample :
    lbr:(int * int) array -> lbr_len:int -> stack:int array -> stack_len:int -> unit;
  on_labels : Csspgo_support.Label_set.t -> unit;
}
(** Streaming sample consumer. The PMU flushes each sample into reusable
    scratch buffers and invokes [on_sample] with the valid prefix lengths:
    [lbr.(0 .. lbr_len-1)] is the ring oldest-first, [stack.(0 ..
    stack_len-1)] is the frame walk leaf-first. The arrays are scratch —
    they are overwritten by the next sample — so a sink must copy anything
    it keeps. With [debug_poison], the scratches are clobbered after every
    flush so aliasing sinks fail loudly.

    [on_labels] is the request-label channel: when [run] is given
    [?labels], the PMU announces the request's label set through it once,
    before the first sample, and every sample flushed afterwards belongs
    to that label set. Recording sinks ({!Sample_log.sink}) intern the set
    and stamp samples with the interned id; sinks that do not care pass
    {!no_labels}. *)

val no_labels : Csspgo_support.Label_set.t -> unit
(** [ignore] with the sink's label-channel type — for sinks indifferent to
    request labels. *)

type result = {
  cycles : int64;
  instructions : int64;
  ret_value : int64;
  samples : sample list;       (** in collection order; [] when a sink is given *)
  n_samples : int;             (** samples taken (counted in sink mode too) *)
  counters : int64 array;      (** instrumentation counters *)
  icache_misses : int64;
  taken_branches : int64;
  mispredicts : int64;   (** per-branch 2-bit dynamic predictor misses *)
  value_profiles : (int, (int64, int64) Hashtbl.t) Hashtbl.t;
      (** per-site value histograms from [Val_prof] instrumentation *)
  addr_counts : (int, int64) Hashtbl.t option;  (** exact, when requested *)
}

exception Trap of string
(** Unmapped jump target, missing entry function, or fuel exhausted. *)

val run :
  ?pmu:pmu option ->
  ?globals_init:(string * int64 array) list ->
  ?args:int64 list ->
  ?count_addrs:bool ->
  ?fuel:int64 ->
  ?sink:sink ->
  ?labels:Csspgo_support.Label_set.t ->
  ?debug_poison:bool ->
  ?obs:Csspgo_obs.Metrics.t ->
  Csspgo_codegen.Mach.binary ->
  entry:string ->
  result
(** Execute [entry] with [args]. Globals not listed in [globals_init] are
    zero-initialized at their declared sizes; listed arrays override
    contents (truncated/padded to the declared size).

    Without [sink], samples are collected into [result.samples] exactly as
    before (an internal collect sink copies the scratches). With [sink],
    every sample is streamed through it, [result.samples] is [[]] and no
    per-sample allocation happens inside the VM. [debug_poison] (default
    off) poisons the scratch buffers after each flush.

    [obs] records per-run telemetry ([vm.runs], [vm.samples-flushed],
    [vm.instructions], [vm.cycles], and a [vm.samples-per-mcycle]
    histogram) once at the end of the run — the interpreter loop itself is
    never instrumented. *)
