(** Random MiniC program generator for property-based differential testing
    and the fuzzing campaign runner.

    Generated programs always terminate: loops are counted ([while (i < C)]
    with a dedicated induction variable), the static call graph is acyclic
    (a function may only call later-defined functions), and every array
    index is total (the VM wraps indices modulo the array size).

    Termination is guaranteed, but running time is only *probabilistically*
    bounded: calls may appear inside loop nests (under a tight per-function
    budget), so a run can multiply loop trip counts across the call chain.
    Harnesses must execute generated programs under a fuel limit and treat
    exhaustion as a discard.

    The same seed always yields the same source text. *)

val random_source :
  ?n_funcs:int -> ?n_globals:int -> ?size:int -> seed:int64 -> unit -> string
(** A full program with a [main(a, b)] entry point. [size] (default 2)
    scales statements per block and the per-function call budget; 0 gives
    near-minimal straight-line functions. *)
