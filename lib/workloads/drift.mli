(** Deterministic source drift: seeded edit scripts over MiniC programs.

    The stale-profile problem is "profile build N, optimize build N+1"
    (paper §III.A). This module manufactures build N+1: it parses a MiniC
    source, applies a seeded sequence of semantically safe edits to the
    AST, and pretty-prints the result ({!Csspgo_frontend.Pretty}), so the
    new revision has shifted line numbers, changed CFG shapes, renamed
    functions, and retargeted call sites — everything that defeats
    line-offset correlation in real toolchains — together with a
    ground-truth edit log.

    Every edit preserves termination and crash-freedom by construction:

    - only side-effect-only statements ([Expr], [Store]) are deleted, never
      [let] bindings (later uses) or assignments (loop inductions);
    - inserted statements are fresh [let] bindings and
      statically-dead [if] blocks over fresh names;
    - removed functions are uncalled non-entry functions; added functions
      are uncalled;
    - call retargeting only redirects to same-arity leaf functions (no
      calls in their body), which cannot introduce recursion or unbounded
      loops (generated loop bounds are constants);
    - renames rewrite every call site consistently.

    Equal [(seed, edits, source)] triples yield byte-identical results, and
    [edits = 0] returns the source verbatim with an empty log. *)

type edit =
  | Insert_stmt of { in_fn : string; at_line : int }
      (** fresh [let] inserted in [in_fn]; [at_line] is the 1-based
          statement slot within the enclosing block *)
  | Insert_block of { in_fn : string; at_line : int }
      (** statically-dead [if] block inserted in [in_fn] *)
  | Delete_stmt of { in_fn : string; at_line : int }
  | Add_fn of { name : string }  (** new, uncalled function appended *)
  | Remove_fn of { name : string }  (** uncalled function removed *)
  | Rename_fn of { old_name : string; new_name : string; call_sites : int }
      (** definition + every call site rewritten *)
  | Reorder_defs of { moved : string }
      (** function definition moved to a new position *)
  | Retarget_call of { in_fn : string; old_callee : string; new_callee : string }
      (** one call site redirected to a same-arity leaf *)

val edit_to_string : edit -> string
(** One-line rendering for logs and fuzz reports. *)

type result = {
  dr_source : string;  (** the pretty-printed "version N+1" program *)
  dr_edits : edit list;  (** ground truth, in application order *)
}

val apply : seed:int64 -> edits:int -> string -> result
(** [apply ~seed ~edits src] parses [src], applies [edits] seeded edits,
    and pretty-prints. [edits = 0] returns [src] unchanged (byte-equal)
    with an empty log. An edit step whose preconditions admit no candidate
    (e.g. no removable function remains) falls back to an always-applicable
    kind, so the log always has exactly [edits] entries.

    @raise Csspgo_frontend.Parser.Parse_error if [src] does not parse. *)

val distances : int list
(** The edit-distance ladder shared by the bench recovery curves and the
    documentation: [[0; 1; 2; 4; 8]]. *)
