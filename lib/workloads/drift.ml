module F = Csspgo_frontend
module Ast = F.Ast
module Rng = Csspgo_support.Rng

type edit =
  | Insert_stmt of { in_fn : string; at_line : int }
  | Insert_block of { in_fn : string; at_line : int }
  | Delete_stmt of { in_fn : string; at_line : int }
  | Add_fn of { name : string }
  | Remove_fn of { name : string }
  | Rename_fn of { old_name : string; new_name : string; call_sites : int }
  | Reorder_defs of { moved : string }
  | Retarget_call of { in_fn : string; old_callee : string; new_callee : string }

let edit_to_string = function
  | Insert_stmt { in_fn; at_line } ->
      Printf.sprintf "insert-stmt %s@%d" in_fn at_line
  | Insert_block { in_fn; at_line } ->
      Printf.sprintf "insert-block %s@%d" in_fn at_line
  | Delete_stmt { in_fn; at_line } ->
      Printf.sprintf "delete-stmt %s@%d" in_fn at_line
  | Add_fn { name } -> Printf.sprintf "add-fn %s" name
  | Remove_fn { name } -> Printf.sprintf "remove-fn %s" name
  | Rename_fn { old_name; new_name; call_sites } ->
      Printf.sprintf "rename-fn %s->%s (%d call sites)" old_name new_name call_sites
  | Reorder_defs { moved } -> Printf.sprintf "reorder-defs %s" moved
  | Retarget_call { in_fn; old_callee; new_callee } ->
      Printf.sprintf "retarget-call %s: %s->%s" in_fn old_callee new_callee

type result = { dr_source : string; dr_edits : edit list }

let distances = [ 0; 1; 2; 4; 8 ]

(* The entry function is never removed or renamed: the driver looks it up by
   name, and the whole point of drift is a program the old profile can still
   be replayed against. *)
let entry_name = "main"

(* ------------------------------------------------------------------ *)
(* AST traversal helpers.                                             *)
(*                                                                    *)
(* Blocks inside one function body are numbered in DFS pre-order; the *)
(* numbering is the contract between candidate collection and the     *)
(* rewrite pass, which both walk the unedited tree in the same order. *)
(* ------------------------------------------------------------------ *)

(* All rewrite passes below mirror a stateful enumeration pass (block
   numbering, expression occurrence counting), so every recursive call must
   happen left to right. OCaml evaluates constructor and tuple arguments
   right to left — sequence explicitly with [let] and use this in-order map
   instead of relying on [List.map]'s application order. *)
let rec map_in_order f = function
  | [] -> []
  | x :: tl ->
      let y = f x in
      let rest = map_in_order f tl in
      y :: rest

let iter_blocks (body : Ast.block) (f : int -> Ast.block -> unit) =
  let next = ref 0 in
  let rec go_block b =
    let id = !next in
    incr next;
    f id b;
    List.iter go_stmt b
  and go_stmt (st : Ast.stmt) =
    match st.s with
    | If (_, t, e) ->
        go_block t;
        go_block e
    | While (_, b) -> go_block b
    | Switch (_, cases, d) ->
        List.iter (fun (_, b) -> go_block b) cases;
        go_block d
    | _ -> ()
  in
  go_block body

let rewrite_block (body : Ast.block) ~target (edit : Ast.block -> Ast.block) =
  let next = ref 0 in
  let rec go_block b =
    let id = !next in
    incr next;
    let b = if id = target then edit b else b in
    map_in_order go_stmt b
  and go_stmt (st : Ast.stmt) : Ast.stmt =
    match st.s with
    | If (c, t, e) ->
        let t = go_block t in
        let e = go_block e in
        { st with s = If (c, t, e) }
    | While (c, b) -> { st with s = While (c, go_block b) }
    | Switch (c, cases, d) ->
        let cases = map_in_order (fun (v, b) -> (v, go_block b)) cases in
        let d = go_block d in
        { st with s = Switch (c, cases, d) }
    | _ -> st
  in
  go_block body

let rec iter_exprs_stmt f (st : Ast.stmt) =
  match st.s with
  | Let (_, e) | Assign (_, e) | Return e | Expr e -> iter_exprs f e
  | Store (_, i, v) ->
      iter_exprs f i;
      iter_exprs f v
  | If (c, t, e) ->
      iter_exprs f c;
      List.iter (iter_exprs_stmt f) t;
      List.iter (iter_exprs_stmt f) e
  | While (c, b) ->
      iter_exprs f c;
      List.iter (iter_exprs_stmt f) b
  | Switch (c, cases, d) ->
      iter_exprs f c;
      List.iter (fun (_, b) -> List.iter (iter_exprs_stmt f) b) cases;
      List.iter (iter_exprs_stmt f) d
  | Break | Continue -> ()

and iter_exprs f (e : Ast.expr) =
  f e;
  match e.e with
  | Int _ | Var _ -> ()
  | Binary (_, a, b) ->
      iter_exprs f a;
      iter_exprs f b
  | Unary (_, a) -> iter_exprs f a
  | Call (_, args) -> List.iter (iter_exprs f) args
  | Index (_, i) -> iter_exprs f i

let rec map_exprs_stmt f (st : Ast.stmt) : Ast.stmt =
  match st.s with
  | Let (n, e) -> { st with s = Let (n, map_exprs f e) }
  | Assign (n, e) -> { st with s = Assign (n, map_exprs f e) }
  | Return e -> { st with s = Return (map_exprs f e) }
  | Expr e -> { st with s = Expr (map_exprs f e) }
  | Store (n, i, v) ->
      let i = map_exprs f i in
      let v = map_exprs f v in
      { st with s = Store (n, i, v) }
  | If (c, t, e) ->
      let c = map_exprs f c in
      let t = map_in_order (map_exprs_stmt f) t in
      let e = map_in_order (map_exprs_stmt f) e in
      { st with s = If (c, t, e) }
  | While (c, b) ->
      let c = map_exprs f c in
      { st with s = While (c, map_in_order (map_exprs_stmt f) b) }
  | Switch (c, cases, d) ->
      let c = map_exprs f c in
      let cases =
        map_in_order (fun (v, b) -> (v, map_in_order (map_exprs_stmt f) b)) cases
      in
      let d = map_in_order (map_exprs_stmt f) d in
      { st with s = Switch (c, cases, d) }
  | Break | Continue -> st

and map_exprs f (e : Ast.expr) : Ast.expr =
  (* Pre-order, like [iter_exprs], so occurrence counters agree between an
     enumeration pass and a rewrite pass. *)
  let e : Ast.expr = f e in
  match e.e with
  | Int _ | Var _ -> e
  | Binary (op, a, b) ->
      let a = map_exprs f a in
      let b = map_exprs f b in
      { e with e = Binary (op, a, b) }
  | Unary (op, a) -> { e with e = Unary (op, map_exprs f a) }
  | Call (n, args) -> { e with e = Call (n, map_in_order (map_exprs f) args) }
  | Index (n, i) -> { e with e = Index (n, map_exprs f i) }

let map_fn_exprs f (fn : Ast.fndef) =
  { fn with fbody = map_in_order (map_exprs_stmt f) fn.fbody }

(* ------------------------------------------------------------------ *)
(* Program facts.                                                     *)
(* ------------------------------------------------------------------ *)

module SS = Set.Make (String)

let used_names (p : Ast.program) =
  let acc = ref SS.empty in
  let add n = acc := SS.add n !acc in
  List.iter (fun (n, _) -> add n) p.pglobals;
  List.iter
    (fun (fn : Ast.fndef) ->
      add fn.fname;
      List.iter add fn.fparams;
      List.iter
        (iter_exprs_stmt (fun (e : Ast.expr) ->
             match e.e with
             | Var n | Call (n, _) | Index (n, _) -> add n
             | _ -> ()))
        fn.fbody)
    p.pfns;
  let rec add_stmt_names (st : Ast.stmt) =
    match st.s with
    | Let (n, _) | Assign (n, _) -> add n
    | Store (n, _, _) -> add n
    | If (_, t, e) ->
        List.iter add_stmt_names t;
        List.iter add_stmt_names e
    | While (_, b) -> List.iter add_stmt_names b
    | Switch (_, cases, d) ->
        List.iter (fun (_, b) -> List.iter add_stmt_names b) cases;
        List.iter add_stmt_names d
    | _ -> ()
  in
  List.iter (fun (fn : Ast.fndef) -> List.iter add_stmt_names fn.fbody) p.pfns;
  !acc

(* Called-by-anyone set, over the whole program. *)
let callees (p : Ast.program) =
  let acc = ref SS.empty in
  List.iter
    (fun (fn : Ast.fndef) ->
      List.iter
        (iter_exprs_stmt (fun (e : Ast.expr) ->
             match e.e with Call (n, _) -> acc := SS.add n !acc | _ -> ()))
        fn.fbody)
    p.pfns;
  !acc

let is_leaf (fn : Ast.fndef) =
  let has_call = ref false in
  List.iter
    (iter_exprs_stmt (fun (e : Ast.expr) ->
         match e.e with Call _ -> has_call := true | _ -> ()))
    fn.fbody;
  not !has_call

let arity_of (p : Ast.program) name =
  List.find_map
    (fun (fn : Ast.fndef) ->
      if String.equal fn.fname name then Some (List.length fn.fparams) else None)
    p.pfns

(* ------------------------------------------------------------------ *)
(* A fresh-name source shared across the whole edit script.           *)
(* ------------------------------------------------------------------ *)

type naming = { mutable used : SS.t; mutable next : int }

let fresh names prefix =
  let rec go () =
    let n = Printf.sprintf "%s%d" prefix names.next in
    names.next <- names.next + 1;
    if SS.mem n names.used then go ()
    else begin
      names.used <- SS.add n names.used;
      n
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The edits. Each returns [Some (program, log entry)] or [None] when *)
(* no candidate satisfies its safety precondition.                    *)
(* ------------------------------------------------------------------ *)

let dummy_stmt s : Ast.stmt = { s; sline = 0 }
let dummy_expr e : Ast.expr = { e; eline = 0 }

let small_const rng = dummy_expr (Ast.Int (Int64.of_int (Rng.int_in rng 1 97)))

(* Uniform (function, block, slot) choice for insertions. *)
let pick_insertion rng (p : Ast.program) =
  let slots = ref [] in
  List.iteri
    (fun fi (fn : Ast.fndef) ->
      iter_blocks fn.fbody (fun bid b ->
          for at = 0 to List.length b do
            slots := (fi, bid, at) :: !slots
          done))
    p.pfns;
  let arr = Array.of_list (List.rev !slots) in
  if Array.length arr = 0 then None else Some (Rng.choose rng arr)

let insert_at b at st =
  let rec go i = function
    | rest when i = at -> st :: rest
    | x :: rest -> x :: go (i + 1) rest
    | [] -> [ st ]
  in
  go 0 b

let edit_insert_stmt rng names (p : Ast.program) =
  match pick_insertion rng p with
  | None -> None
  | Some (fi, bid, at) ->
      let name = fresh names "drift_v" in
      let st =
        dummy_stmt
          (Ast.Let
             ( name,
               dummy_expr
                 (Ast.Binary (Ast.Arith Csspgo_ir.Types.Add, small_const rng, small_const rng))
             ))
      in
      let pfns =
        List.mapi
          (fun i (fn : Ast.fndef) ->
            if i = fi then
              { fn with fbody = rewrite_block fn.fbody ~target:bid (fun b -> insert_at b at st) }
            else fn)
          p.pfns
      in
      let in_fn = (List.nth p.pfns fi).fname in
      Some ({ p with pfns }, Insert_stmt { in_fn; at_line = at + 1 })

let edit_insert_block rng names (p : Ast.program) =
  match pick_insertion rng p with
  | None -> None
  | Some (fi, bid, at) ->
      let name = fresh names "drift_b" in
      (* Statically dead: the condition is the literal 0. The block still
         lowers to real CFG nodes, so the function's shape checksum moves. *)
      let st =
        dummy_stmt
          (Ast.If
             ( dummy_expr (Ast.Int 0L),
               [ dummy_stmt (Ast.Let (name, small_const rng)) ],
               [] ))
      in
      let pfns =
        List.mapi
          (fun i (fn : Ast.fndef) ->
            if i = fi then
              { fn with fbody = rewrite_block fn.fbody ~target:bid (fun b -> insert_at b at st) }
            else fn)
          p.pfns
      in
      let in_fn = (List.nth p.pfns fi).fname in
      Some ({ p with pfns }, Insert_block { in_fn; at_line = at + 1 })

let edit_delete_stmt rng (p : Ast.program) =
  (* Only side-effect-only statements: deleting a [let] breaks later uses,
     deleting an assignment can break a loop induction. *)
  let cands = ref [] in
  List.iteri
    (fun fi (fn : Ast.fndef) ->
      iter_blocks fn.fbody (fun bid b ->
          List.iteri
            (fun at (st : Ast.stmt) ->
              match st.s with
              | Expr _ | Store _ -> cands := (fi, bid, at) :: !cands
              | _ -> ())
            b))
    p.pfns;
  match List.rev !cands with
  | [] -> None
  | l ->
      let fi, bid, at = Rng.choose rng (Array.of_list l) in
      let pfns =
        List.mapi
          (fun i (fn : Ast.fndef) ->
            if i = fi then
              { fn with
                fbody =
                  rewrite_block fn.fbody ~target:bid (fun b ->
                      List.filteri (fun j _ -> j <> at) b) }
            else fn)
          p.pfns
      in
      let in_fn = (List.nth p.pfns fi).fname in
      Some ({ p with pfns }, Delete_stmt { in_fn; at_line = at + 1 })

let edit_add_fn rng names (p : Ast.program) =
  let name = fresh names "drift_fn" in
  let body =
    [ dummy_stmt
        (Ast.Return
           (dummy_expr
              (Ast.Binary
                 ( Ast.Arith Csspgo_ir.Types.Mul,
                   dummy_expr (Ast.Var "a"),
                   small_const rng )))) ]
  in
  let fn : Ast.fndef =
    { fname = name; fparams = [ "a" ]; fbody = body; fline = 0; fmodule = "main" }
  in
  Some ({ p with pfns = p.pfns @ [ fn ] }, Add_fn { name })

let edit_remove_fn rng (p : Ast.program) =
  let called = callees p in
  let cands =
    List.filter
      (fun (fn : Ast.fndef) ->
        (not (String.equal fn.fname entry_name)) && not (SS.mem fn.fname called))
      p.pfns
  in
  match cands with
  | [] -> None
  | l ->
      let victim = (Rng.choose rng (Array.of_list l)).Ast.fname in
      let pfns = List.filter (fun (fn : Ast.fndef) -> not (String.equal fn.fname victim)) p.pfns in
      Some ({ p with pfns }, Remove_fn { name = victim })

let edit_rename_fn rng names (p : Ast.program) =
  let cands =
    List.filter (fun (fn : Ast.fndef) -> not (String.equal fn.fname entry_name)) p.pfns
  in
  match cands with
  | [] -> None
  | l ->
      let old_name = (Rng.choose rng (Array.of_list l)).Ast.fname in
      let new_name = fresh names "drift_r" in
      let sites = ref 0 in
      let pfns =
        List.map
          (fun (fn : Ast.fndef) ->
            let fn =
              map_fn_exprs
                (fun (e : Ast.expr) ->
                  match e.e with
                  | Call (n, args) when String.equal n old_name ->
                      incr sites;
                      { e with e = Call (new_name, args) }
                  | _ -> e)
                fn
            in
            if String.equal fn.fname old_name then { fn with fname = new_name } else fn)
          p.pfns
      in
      Some
        ( { p with pfns },
          Rename_fn { old_name; new_name; call_sites = !sites } )

let edit_reorder_defs rng (p : Ast.program) =
  let n = List.length p.pfns in
  if n < 2 then None
  else begin
    let from = Rng.int rng n in
    let to_ = (from + 1 + Rng.int rng (n - 1)) mod n in
    let arr = Array.of_list p.pfns in
    let moved = arr.(from) in
    let rest = List.filteri (fun i _ -> i <> from) p.pfns in
    let rec insert i = function
      | rest when i = to_ -> moved :: rest
      | x :: tl -> x :: insert (i + 1) tl
      | [] -> [ moved ]
    in
    Some ({ p with pfns = insert 0 rest }, Reorder_defs { moved = moved.Ast.fname })
  end

let edit_retarget_call rng (p : Ast.program) =
  let leaves =
    List.filter (fun (fn : Ast.fndef) -> is_leaf fn) p.pfns
  in
  if leaves = [] then None
  else begin
    (* Enumerate call sites as (function index, occurrence index) with the
       set of viable replacement leaves: same arity, not the enclosing
       function (no recursion), not the current callee. *)
    let cands = ref [] in
    List.iteri
      (fun fi (fn : Ast.fndef) ->
        let occ = ref (-1) in
        List.iter
          (iter_exprs_stmt (fun (e : Ast.expr) ->
               match e.e with
               | Call (callee, args) ->
                   incr occ;
                   let nargs = List.length args in
                   (match arity_of p callee with
                   | None -> ()
                   | Some _ ->
                       let viable =
                         List.filter
                           (fun (l : Ast.fndef) ->
                             List.length l.fparams = nargs
                             && (not (String.equal l.fname fn.fname))
                             && not (String.equal l.fname callee))
                           leaves
                       in
                       if viable <> [] then cands := (fi, !occ, callee, viable) :: !cands)
               | _ -> ()))
          fn.fbody)
      p.pfns;
    match List.rev !cands with
    | [] -> None
    | l ->
        let fi, occ, old_callee, viable = Rng.choose rng (Array.of_list l) in
        let new_callee = (Rng.choose rng (Array.of_list viable)).Ast.fname in
        (* Occurrence numbering counts every call in the function, matching
           the enumeration pass above. *)
        let seen = ref (-1) in
        let pfns =
          List.mapi
            (fun i (fn : Ast.fndef) ->
              if i <> fi then fn
              else
                map_fn_exprs
                  (fun (e : Ast.expr) ->
                    match e.e with
                    | Call (_, args) ->
                        incr seen;
                        if !seen = occ then { e with e = Call (new_callee, args) }
                        else e
                    | _ -> e)
                  fn)
            p.pfns
        in
        let in_fn = (List.nth p.pfns fi).fname in
        Some ({ p with pfns }, Retarget_call { in_fn; old_callee; new_callee })
  end

(* ------------------------------------------------------------------ *)
(* The script driver.                                                 *)
(* ------------------------------------------------------------------ *)

type kind =
  | K_insert_stmt
  | K_insert_block
  | K_delete_stmt
  | K_add_fn
  | K_remove_fn
  | K_rename_fn
  | K_reorder
  | K_retarget

(* Weighted toward the statement-level edits that dominate real diffs;
   structural edits (rename/remove/reorder) are rarer, as in production
   release-to-release drift. *)
let kind_pool =
  [| K_insert_stmt; K_insert_stmt; K_insert_block; K_delete_stmt; K_delete_stmt;
     K_retarget; K_add_fn; K_rename_fn; K_reorder; K_remove_fn |]

let try_kind rng names p = function
  | K_insert_stmt -> edit_insert_stmt rng names p
  | K_insert_block -> edit_insert_block rng names p
  | K_delete_stmt -> edit_delete_stmt rng p
  | K_add_fn -> edit_add_fn rng names p
  | K_remove_fn -> edit_remove_fn rng p
  | K_rename_fn -> edit_rename_fn rng names p
  | K_reorder -> edit_reorder_defs rng p
  | K_retarget -> edit_retarget_call rng p

let apply ~seed ~edits src =
  if edits <= 0 then { dr_source = src; dr_edits = [] }
  else begin
    let p = F.Parser.parse src in
    let rng = Rng.create seed in
    let names = { used = used_names p; next = 1 } in
    let prog = ref p in
    let log = ref [] in
    for _ = 1 to edits do
      let first = Rng.choose rng kind_pool in
      (* Fall back through the other kinds if the chosen one has no safe
         candidate; insertions always apply, so the script never stalls. *)
      let fallback =
        [ K_delete_stmt; K_retarget; K_rename_fn; K_reorder; K_remove_fn;
          K_add_fn; K_insert_block; K_insert_stmt ]
      in
      let rec attempt = function
        | [] -> assert false
        | k :: rest -> (
            match try_kind rng names !prog k with
            | Some (p', entry) ->
                prog := p';
                log := entry :: !log
            | None -> attempt rest)
      in
      attempt (first :: List.filter (fun k -> k <> first) fallback)
    done;
    { dr_source = F.Pretty.program !prog; dr_edits = List.rev !log }
  end
