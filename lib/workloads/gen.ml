open Csspgo_support

type ctx = {
  rng : Rng.t;
  buf : Buffer.t;
  globals : string array;
  size : int;  (* statement/expression richness knob; 2 = historical default *)
  (* functions callable from the one being generated: (name, arity) *)
  mutable callable : (string * int) list;
  mutable vars : string list;     (* in scope, assignable *)
  mutable ro_vars : string list;  (* readable only (loop induction vars) *)
  mutable fresh : int;
  mutable depth : int;
  mutable calls_left : int;  (* per-function budget: bounds call fan-out *)
  mutable loop_calls_left : int;
      (* tighter budget for calls nested inside loops: the multiplicative
         blow-up of loop nests * call fan-out is what exhausts fuel *)
}

let fresh_var ctx =
  let v = Printf.sprintf "v%d" ctx.fresh in
  ctx.fresh <- ctx.fresh + 1;
  v

let indent n = String.make (2 * n) ' '

let rec gen_expr ctx d =
  let atom () =
    match Rng.int ctx.rng 10 with
    | 0 | 1 | 2 -> string_of_int (Rng.int ctx.rng 1000)
    | 3 | 4 | 5 | 6 ->
        let readable = ctx.vars @ ctx.ro_vars in
        if readable = [] then string_of_int (Rng.int ctx.rng 100)
        else List.nth readable (Rng.int ctx.rng (List.length readable))
    | 7 ->
        let g = Rng.choose ctx.rng ctx.globals in
        Printf.sprintf "%s[%s]" g (gen_expr ctx 0)
    | _ ->
        (* Calls draw from two budgets: a per-function one, and a much
           tighter one for calls nested inside loops/branches. Both bound
           the multiplicative blow-up of random loop nests * call fan-out,
           so most generated programs finish within test fuel; the rest are
           discarded by the out-of-fuel guard of whatever harness runs
           them. *)
        let in_nest = ctx.depth > 0 in
        let allowed =
          ctx.callable <> [] && d > 0 && ctx.calls_left > 0
          && ((not in_nest) || ctx.loop_calls_left > 0)
        in
        if not allowed then string_of_int (Rng.int ctx.rng 100)
        else begin
          ctx.calls_left <- ctx.calls_left - 1;
          if in_nest then ctx.loop_calls_left <- ctx.loop_calls_left - 1;
          let name, arity =
            List.nth ctx.callable (Rng.int ctx.rng (List.length ctx.callable))
          in
          let args = List.init arity (fun _ -> gen_expr ctx (d - 1)) in
          Printf.sprintf "%s(%s)" name (String.concat ", " args)
        end
  in
  if d <= 0 then atom ()
  else
    match Rng.int ctx.rng 15 with
    | 0 -> Printf.sprintf "(%s + %s)" (gen_expr ctx (d - 1)) (gen_expr ctx (d - 1))
    | 1 -> Printf.sprintf "(%s - %s)" (gen_expr ctx (d - 1)) (gen_expr ctx (d - 1))
    | 2 -> Printf.sprintf "(%s * %s)" (gen_expr ctx (d - 1)) (gen_expr ctx (d - 1))
    | 3 -> Printf.sprintf "(%s / %s)" (gen_expr ctx (d - 1)) (gen_expr ctx (d - 1))
    | 4 -> Printf.sprintf "(%s %% %s)" (gen_expr ctx (d - 1)) (gen_expr ctx (d - 1))
    | 5 -> Printf.sprintf "(%s & %s)" (gen_expr ctx (d - 1)) (gen_expr ctx (d - 1))
    | 6 -> Printf.sprintf "(%s | %s)" (gen_expr ctx (d - 1)) (gen_expr ctx (d - 1))
    | 7 -> Printf.sprintf "(%s ^ %s)" (gen_expr ctx (d - 1)) (gen_expr ctx (d - 1))
    | 8 -> Printf.sprintf "(%s >> %s)" (gen_expr ctx (d - 1)) (string_of_int (Rng.int ctx.rng 8))
    | 9 ->
        let cmp = Rng.choose ctx.rng [| "=="; "!="; "<"; "<="; ">"; ">=" |] in
        Printf.sprintf "(%s %s %s)" (gen_expr ctx (d - 1)) cmp (gen_expr ctx (d - 1))
    | 10 -> Printf.sprintf "(%s && %s)" (gen_expr ctx (d - 1)) (gen_expr ctx (d - 1))
    | 11 -> Printf.sprintf "(%s || %s)" (gen_expr ctx (d - 1)) (gen_expr ctx (d - 1))
    | 12 -> Printf.sprintf "(!%s)" (gen_expr ctx (d - 1))
    | 13 -> Printf.sprintf "(-%s)" (gen_expr ctx (d - 1))
    | _ -> atom ()

let rec gen_stmt ctx level =
  let pad = indent level in
  match Rng.int ctx.rng 13 with
  | 0 | 1 | 2 ->
      let v = fresh_var ctx in
      Buffer.add_string ctx.buf
        (Printf.sprintf "%slet %s = %s;\n" pad v (gen_expr ctx 2));
      ctx.vars <- v :: ctx.vars
  | 3 | 4 when ctx.vars <> [] ->
      let v = List.nth ctx.vars (Rng.int ctx.rng (List.length ctx.vars)) in
      Buffer.add_string ctx.buf (Printf.sprintf "%s%s = %s;\n" pad v (gen_expr ctx 2))
  | 5 ->
      let g = Rng.choose ctx.rng ctx.globals in
      Buffer.add_string ctx.buf
        (Printf.sprintf "%s%s[%s] = %s;\n" pad g (gen_expr ctx 1) (gen_expr ctx 2))
  | 6 | 7 when ctx.depth < 3 ->
      ctx.depth <- ctx.depth + 1;
      Buffer.add_string ctx.buf (Printf.sprintf "%sif (%s) {\n" pad (gen_expr ctx 2));
      let saved = ctx.vars in
      gen_block ctx (level + 1);
      ctx.vars <- saved;
      if Rng.bool ctx.rng then begin
        Buffer.add_string ctx.buf (Printf.sprintf "%s} else {\n" pad);
        gen_block ctx (level + 1);
        ctx.vars <- saved
      end;
      Buffer.add_string ctx.buf (Printf.sprintf "%s}\n" pad);
      ctx.depth <- ctx.depth - 1
  | 8 when ctx.depth < 2 ->
      (* Counted loop with a dedicated induction variable. *)
      ctx.depth <- ctx.depth + 1;
      let i = fresh_var ctx in
      let bound = 1 + Rng.int ctx.rng 6 in
      Buffer.add_string ctx.buf (Printf.sprintf "%slet %s = 0;\n" pad i);
      Buffer.add_string ctx.buf (Printf.sprintf "%swhile (%s < %d) {\n" pad i bound);
      (* The induction variable is readable but never assignable inside the
         body — otherwise generated code could reset it and loop forever. *)
      let saved = ctx.vars and saved_ro = ctx.ro_vars in
      ctx.ro_vars <- i :: ctx.ro_vars;
      gen_block ctx (level + 1);
      Buffer.add_string ctx.buf
        (Printf.sprintf "%s%s = %s + 1;\n" (indent (level + 1)) i i);
      ctx.vars <- saved;
      ctx.ro_vars <- saved_ro;
      Buffer.add_string ctx.buf (Printf.sprintf "%s}\n" pad);
      ctx.depth <- ctx.depth - 1
  | 9 when ctx.depth < 2 ->
      ctx.depth <- ctx.depth + 1;
      Buffer.add_string ctx.buf (Printf.sprintf "%sswitch (%s) {\n" pad (gen_expr ctx 1));
      let n_cases = 1 + Rng.int ctx.rng 4 in
      let saved = ctx.vars in
      for k = 0 to n_cases - 1 do
        Buffer.add_string ctx.buf (Printf.sprintf "%scase %d:\n" (indent (level + 1)) k);
        gen_block ctx (level + 2);
        ctx.vars <- saved
      done;
      Buffer.add_string ctx.buf (Printf.sprintf "%sdefault:\n" (indent (level + 1)));
      gen_block ctx (level + 2);
      ctx.vars <- saved;
      Buffer.add_string ctx.buf (Printf.sprintf "%s}\n" pad);
      ctx.depth <- ctx.depth - 1
  | 10 ->
      (* Global-to-global aliasing store: same array on both sides, so the
         load may or may not observe the store depending on index overlap —
         a pattern that punishes passes assuming distinct memory. *)
      let g = Rng.choose ctx.rng ctx.globals in
      Buffer.add_string ctx.buf
        (Printf.sprintf "%s%s[%s] = (%s[%s] + %s);\n" pad g (gen_expr ctx 1) g
           (gen_expr ctx 1) (gen_expr ctx 1))
  | _ ->
      Buffer.add_string ctx.buf (Printf.sprintf "%s%s;\n" pad (gen_expr ctx 2))

and gen_block ctx level =
  let n = 1 + Rng.int ctx.rng (max 1 (ctx.size + 1)) in
  for _ = 1 to n do
    gen_stmt ctx level
  done

let gen_fn ctx name arity =
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  ctx.vars <- params;
  ctx.ro_vars <- [];
  ctx.fresh <- 0;
  ctx.depth <- 0;
  ctx.calls_left <- 1 + ctx.size;
  ctx.loop_calls_left <- 1;
  Buffer.add_string ctx.buf
    (Printf.sprintf "fn %s(%s) {\n" name (String.concat ", " params));
  gen_block ctx 1;
  Buffer.add_string ctx.buf (Printf.sprintf "  return %s;\n" (gen_expr ctx 2));
  Buffer.add_string ctx.buf "}\n\n"

let random_source ?(n_funcs = 6) ?(n_globals = 2) ?(size = 2) ~seed () =
  let rng = Rng.create seed in
  let globals = Array.init n_globals (fun i -> Printf.sprintf "g%d" i) in
  let ctx =
    { rng; buf = Buffer.create 4096; globals; size = max 0 size; callable = [];
      vars = []; ro_vars = []; fresh = 0; depth = 0; calls_left = 3;
      loop_calls_left = 1 }
  in
  Array.iter
    (fun g ->
      Buffer.add_string ctx.buf
        (Printf.sprintf "global %s[%d];\n" g (16 + Rng.int rng 64)))
    globals;
  Buffer.add_string ctx.buf "\n";
  (* Bottom-up: each function may call the previously generated ones, so the
     call graph is acyclic and every run terminates. *)
  for i = 0 to n_funcs - 1 do
    if Rng.chance rng 0.3 then
      Buffer.add_string ctx.buf (Printf.sprintf "module m%d;\n\n" (Rng.int rng 3));
    let name = Printf.sprintf "f%d" i in
    let arity = 1 + Rng.int rng 2 in
    gen_fn ctx name arity;
    ctx.callable <- (name, arity) :: ctx.callable
  done;
  gen_fn ctx "main" 2;
  Buffer.contents ctx.buf
