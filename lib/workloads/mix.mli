(** Labeled multi-tenant service mixes: compose several suite workloads
    into one program serving weighted, time-varying traffic, with every
    request labeled by tenant — the workload side of request-scoped
    profile labels.

    Composition is at the AST level: each tenant's MiniC source is parsed,
    its functions, globals and modules are prefix-renamed (tenant [i] gets
    [t<i>_]), and a dispatcher [main(tenant, a0, a1, ...)] switches on the
    first argument to the renamed entry point (extra arguments are padded
    with zeros to the widest tenant arity). The composed source re-parses
    and lowers like any suite workload, so every driver, plan stage and
    fleet path runs it unchanged.

    Traffic is a seeded weighted draw per request. With a diurnal period,
    each tenant's weight is modulated by an integer triangle wave,
    phase-shifted per tenant, so the mix drifts over the stream — tenants
    take turns dominating, the way day/night traffic rotates across
    regions. Equal inputs yield byte-identical mixes (sources, streams and
    labels). *)

type tenant = {
  t_name : string;  (** the [tenant=] label value; must be unique *)
  t_workload : Csspgo_core.Driver.workload;
  t_weight : int;  (** base traffic weight, > 0 *)
}

type t = {
  mx_workload : Csspgo_core.Driver.workload;
      (** the composed program: [w_train] is the blended request stream
          (label-blind view of [mx_requests]), [w_eval] the concatenation
          of every tenant's eval specs *)
  mx_requests : (Csspgo_core.Driver.run_spec * Csspgo_support.Label_set.t) list;
      (** the labeled train stream, in serving order — feed to
          [Fleet.Instance.serve_labeled] *)
  mx_tenant_evals : (string * Csspgo_core.Driver.run_spec list) list;
      (** per-tenant eval specs (tenant-dispatched), for per-tenant
          specialized builds and truth runs *)
  mx_counts : (string * int) list;
      (** requests per tenant in the stream — the observed mix *)
}

val tenant_key : string
(** ["tenant"] — the label key carrying {!tenant.t_name}; project label
    sets onto [[tenant_key]] to group per-request slices by tenant. *)

val endpoint_key : string
(** ["endpoint"] — the label key carrying the underlying workload name. *)

val label_of_tenant : tenant -> Csspgo_support.Label_set.t
(** [tenant=<name>,endpoint=<workload>] — the set stamped on the tenant's
    requests. *)

val make :
  ?seed:int64 ->
  ?requests:int ->
  ?diurnal_period:int ->
  tenant list ->
  t
(** Compose a mix. [requests] (default 64) is the train-stream length;
    [diurnal_period] (default 0 = stationary weights) is the triangle-wave
    period in requests.
    @raise Invalid_argument on an empty tenant list, a duplicate tenant
    name, a non-positive weight, or a tenant workload with no train spec.
    @raise Csspgo_frontend.Parser.Parse_error if a tenant source does not
    parse. *)
