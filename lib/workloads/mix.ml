module D = Csspgo_core.Driver
module Ast = Csspgo_frontend.Ast
module Parser = Csspgo_frontend.Parser
module Pretty = Csspgo_frontend.Pretty
module Rng = Csspgo_support.Rng
module Label_set = Csspgo_support.Label_set

type tenant = { t_name : string; t_workload : D.workload; t_weight : int }

type t = {
  mx_workload : D.workload;
  mx_requests : (D.run_spec * Label_set.t) list;
  mx_tenant_evals : (string * D.run_spec list) list;
  mx_counts : (string * int) list;
}

let tenant_key = "tenant"
let endpoint_key = "endpoint"

let label_of_tenant t =
  Label_set.of_list
    [ (tenant_key, t.t_name); (endpoint_key, t.t_workload.D.w_name) ]

(* --- AST composition -------------------------------------------------- *)

(* Prefix-rename one tenant's program: functions (and every call site),
   globals (referenced only through Index/Store — MiniC globals are
   arrays, so locals can never shadow them) and modules. *)
let rename prefix (p : Ast.program) =
  let fns = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace fns f.Ast.fname ()) p.Ast.pfns;
  let globals = Hashtbl.create 16 in
  List.iter (fun (g, _) -> Hashtbl.replace globals g ()) p.Ast.pglobals;
  let fn name = if Hashtbl.mem fns name then prefix ^ name else name in
  let glob name = if Hashtbl.mem globals name then prefix ^ name else name in
  let rec expr (e : Ast.expr) =
    let k =
      match e.Ast.e with
      | Ast.Int _ | Ast.Var _ -> e.Ast.e
      | Ast.Binary (op, a, b) -> Ast.Binary (op, expr a, expr b)
      | Ast.Unary (op, a) -> Ast.Unary (op, expr a)
      | Ast.Call (name, args) -> Ast.Call (fn name, List.map expr args)
      | Ast.Index (g, i) -> Ast.Index (glob g, expr i)
    in
    { e with Ast.e = k }
  in
  let rec stmt (s : Ast.stmt) =
    let k =
      match s.Ast.s with
      | Ast.Let (x, e) -> Ast.Let (x, expr e)
      | Ast.Assign (x, e) -> Ast.Assign (x, expr e)
      | Ast.Store (g, i, v) -> Ast.Store (glob g, expr i, expr v)
      | Ast.If (c, a, b) -> Ast.If (expr c, block a, block b)
      | Ast.While (c, b) -> Ast.While (expr c, block b)
      | Ast.Switch (e, cases, d) ->
          Ast.Switch
            (expr e, List.map (fun (v, b) -> (v, block b)) cases, block d)
      | Ast.Return e -> Ast.Return (expr e)
      | Ast.Expr e -> Ast.Expr (expr e)
      | Ast.Break | Ast.Continue -> s.Ast.s
    in
    { s with Ast.s = k }
  and block b = List.map stmt b in
  {
    Ast.pglobals = List.map (fun (g, n) -> (prefix ^ g, n)) p.Ast.pglobals;
    pfns =
      List.map
        (fun f ->
          {
            f with
            Ast.fname = prefix ^ f.Ast.fname;
            fbody = block f.Ast.fbody;
            fmodule = prefix ^ f.Ast.fmodule;
          })
        p.Ast.pfns;
  }

let e0 k = { Ast.e = k; eline = 1 }
let s0 k = { Ast.s = k; sline = 1 }

(* main(tenant, a0 .. a{width-1}): switch on the tenant id to the renamed
   entry, passing each tenant its own arity's worth of arguments. *)
let dispatcher ~width entries =
  let args = List.init width (fun i -> Printf.sprintf "a%d" i) in
  let cases =
    List.mapi
      (fun i (entry, arity) ->
        let call =
          Ast.Call (entry, List.map (fun a -> e0 (Ast.Var a)) (List.filteri (fun j _ -> j < arity) args))
        in
        (Int64.of_int i, [ s0 (Ast.Return (e0 call)) ]))
      entries
  in
  {
    Ast.fname = "main";
    fparams = "tenant" :: args;
    fbody =
      [
        s0
          (Ast.Switch
             (e0 (Ast.Var "tenant"), cases, [ s0 (Ast.Return (e0 (Ast.Int 0L))) ]));
      ];
    fline = 1;
    fmodule = "mixmain";
  }

(* --- traffic ---------------------------------------------------------- *)

(* Integer triangle wave in [1, amp], period [period], phase-shifted:
   deterministic diurnal modulation of a tenant's base weight. *)
let diurnal_amp = 4

let wave ~period ~phase k =
  if period <= 0 then 1
  else
    let x = (k + phase) mod period in
    let up = if 2 * x <= period then 2 * x else (2 * period) - (2 * x) in
    1 + ((diurnal_amp - 1) * up / period)

let make ?(seed = 7L) ?(requests = 64) ?(diurnal_period = 0) tenants =
  if tenants = [] then invalid_arg "Mix.make: no tenants";
  let names = Hashtbl.create 8 in
  List.iter
    (fun t ->
      if t.t_weight <= 0 then invalid_arg "Mix.make: non-positive weight";
      if t.t_workload.D.w_train = [] then
        invalid_arg "Mix.make: tenant workload has no train spec";
      if Hashtbl.mem names t.t_name then
        invalid_arg "Mix.make: duplicate tenant name";
      Hashtbl.replace names t.t_name ())
    tenants;
  let n = List.length tenants in
  let parsed =
    List.mapi
      (fun i t ->
        let prefix = Printf.sprintf "t%d_" i in
        (i, t, prefix, rename prefix (Parser.parse t.t_workload.D.w_source)))
      tenants
  in
  let arity_of i t p =
    let entry = Printf.sprintf "t%d_%s" i t.t_workload.D.w_entry in
    match List.find_opt (fun f -> String.equal f.Ast.fname entry) p.Ast.pfns with
    | Some f -> List.length f.Ast.fparams
    | None ->
        invalid_arg
          (Printf.sprintf "Mix.make: tenant %s has no entry %s" t.t_name
             t.t_workload.D.w_entry)
  in
  let entries =
    List.map
      (fun (i, t, prefix, p) ->
        (prefix ^ t.t_workload.D.w_entry, arity_of i t p))
      parsed
  in
  let width = List.fold_left (fun a (_, ar) -> max a ar) 0 entries in
  let program =
    {
      Ast.pglobals = List.concat_map (fun (_, _, _, p) -> p.Ast.pglobals) parsed;
      pfns =
        List.concat_map (fun (_, _, _, p) -> p.Ast.pfns) parsed
        @ [ dispatcher ~width entries ];
    }
  in
  let source = Pretty.program program in
  (* Re-dispatch one of the tenant's specs through the combined entry:
     prepend the tenant id, pad args to the dispatcher arity, and rename
     the initialized globals. *)
  let respec i prefix (spec : D.run_spec) =
    let pad = width - List.length spec.D.rs_args in
    if pad < 0 then invalid_arg "Mix.make: spec wider than entry arity";
    {
      D.rs_args =
        (Int64.of_int i :: spec.D.rs_args) @ List.init pad (fun _ -> 0L);
      rs_globals = List.map (fun (g, a) -> (prefix ^ g, a)) spec.D.rs_globals;
    }
  in
  let rng = Rng.create seed in
  let train_cursor = Array.make n 0 in
  let counts = Array.make n 0 in
  let tenant_arr = Array.of_list parsed in
  let phase i = if n = 0 then 0 else i * diurnal_period / n in
  let stream = ref [] in
  for k = 0 to requests - 1 do
    let total = ref 0 in
    Array.iter
      (fun (i, t, _, _) ->
        total := !total + (t.t_weight * wave ~period:diurnal_period ~phase:(phase i) k))
      tenant_arr;
    let r = ref (Rng.int rng !total) in
    let chosen = ref tenant_arr.(0) in
    (try
       Array.iter
         (fun ((i, t, _, _) as entry) ->
           let w = t.t_weight * wave ~period:diurnal_period ~phase:(phase i) k in
           if !r < w then begin
             chosen := entry;
             raise Exit
           end
           else r := !r - w)
         tenant_arr
     with Exit -> ());
    let i, t, prefix, _ = !chosen in
    let train = t.t_workload.D.w_train in
    let spec = List.nth train (train_cursor.(i) mod List.length train) in
    train_cursor.(i) <- train_cursor.(i) + 1;
    counts.(i) <- counts.(i) + 1;
    stream := (respec i prefix spec, label_of_tenant t) :: !stream
  done;
  let mx_requests = List.rev !stream in
  let mx_tenant_evals =
    List.map
      (fun (i, t, prefix, _) ->
        (t.t_name, List.map (respec i prefix) t.t_workload.D.w_eval))
      parsed
  in
  let mx_workload =
    {
      D.w_name =
        "mix:"
        ^ String.concat "+" (List.map (fun t -> t.t_name) tenants);
      w_source = source;
      w_entry = "main";
      w_train = List.map fst mx_requests;
      w_eval = List.concat_map snd mx_tenant_evals;
    }
  in
  {
    mx_workload;
    mx_requests;
    mx_tenant_evals;
    mx_counts =
      List.map (fun (i, t, _, _) -> (t.t_name, counts.(i))) parsed;
  }
