(** IR functions: a CFG of basic blocks plus PGO-related bookkeeping
    (probe-id allocation, CFG checksum, profile-annotation state). *)

open Types

type t = {
  name : string;
  guid : Guid.t;
  modname : string;  (** owning compilation module (ThinLTO-style unit) *)
  params : reg list;
  mutable nregs : int;  (** virtual register count; fresh regs extend it *)
  blocks : (label, Block.t) Hashtbl.t;
  mutable entry : label;
  mutable next_label : int;
  mutable next_probe : int;    (** next pseudo-probe id to allocate (1-based) *)
  mutable checksum : int64;    (** CFG checksum recorded at probe insertion; 0 = none *)
  mutable annotated : bool;    (** block/edge counts carry a real profile *)
  mutable inlined_away : bool; (** body fully inlined & dropped from codegen *)
}

val mk : name:string -> modname:string -> params:reg list -> t
(** Creates the function with a fresh empty entry block. *)

val fresh_reg : t -> reg
val fresh_block : t -> Block.t
val block : t -> label -> Block.t
val find_block : t -> label -> Block.t option
val remove_block : t -> label -> unit
val entry_block : t -> Block.t
val n_blocks : t -> int
val iter_blocks : (Block.t -> unit) -> t -> unit
(** Iteration in ascending label order (deterministic). *)

val fold_blocks : ('a -> Block.t -> 'a) -> 'a -> t -> 'a
val labels : t -> label list
(** Ascending. *)

val fresh_probe_id : t -> int

val total_count : t -> int64
(** Sum of annotated block counts (0 when unannotated). *)

val entry_count : t -> int64
val copy : t -> t
(** Deep copy (blocks and instructions are fresh). *)

val digest : t -> Csspgo_support.Fnv.t
(** Canonical structural digest: hashes the function's scalar fields and
    every block (sorted label order — counts, edge counts, terminator,
    instructions). Two structurally equal functions digest equally no
    matter how they were built (cold lowering, [copy], [Marshal]
    round-trip), which is what lets the incremental rebuild engine key
    per-function compilation caches on it. *)

val pp : Format.formatter -> t -> unit
