open Types
open Csspgo_support

type t = {
  name : string;
  guid : Guid.t;
  modname : string;
  params : reg list;
  mutable nregs : int;
  blocks : (label, Block.t) Hashtbl.t;
  mutable entry : label;
  mutable next_label : int;
  mutable next_probe : int;
  mutable checksum : int64;
  mutable annotated : bool;
  mutable inlined_away : bool;
}

let mk ~name ~modname ~params =
  let t =
    {
      name;
      guid = Guid.of_name name;
      modname;
      params;
      nregs = (List.fold_left (fun acc r -> max acc (r + 1)) 0 params);
      blocks = Hashtbl.create 16;
      entry = 0;
      next_label = 0;
      next_probe = 1;
      checksum = 0L;
      annotated = false;
      inlined_away = false;
    }
  in
  let b = Block.mk 0 in
  Hashtbl.replace t.blocks 0 b;
  t.next_label <- 1;
  t

let fresh_reg t =
  let r = t.nregs in
  t.nregs <- r + 1;
  r

let fresh_block t =
  let id = t.next_label in
  t.next_label <- id + 1;
  let b = Block.mk id in
  Hashtbl.replace t.blocks id b;
  b

let block t l =
  match Hashtbl.find_opt t.blocks l with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Func.block: no bb%d in %s" l t.name)

let find_block t l = Hashtbl.find_opt t.blocks l

let remove_block t l = Hashtbl.remove t.blocks l

let entry_block t = block t t.entry

let n_blocks t = Hashtbl.length t.blocks

let labels t =
  Hashtbl.fold (fun l _ acc -> l :: acc) t.blocks [] |> List.sort compare

let iter_blocks f t = List.iter (fun l -> f (block t l)) (labels t)

let fold_blocks f acc t = List.fold_left (fun acc l -> f acc (block t l)) acc (labels t)

let fresh_probe_id t =
  let id = t.next_probe in
  t.next_probe <- id + 1;
  id

let total_count t = fold_blocks (fun acc b -> Int64.add acc b.Block.count) 0L t

let entry_count t = (entry_block t).Block.count

let copy t =
  let blocks = Hashtbl.create (Hashtbl.length t.blocks) in
  Hashtbl.iter
    (fun l (b : Block.t) ->
      let nb = Block.mk l in
      Vec.iter (fun i -> Vec.push nb.Block.instrs (Instr.copy i)) b.Block.instrs;
      nb.Block.term <- b.Block.term;
      nb.Block.count <- b.Block.count;
      nb.Block.edge_counts <- Array.copy b.Block.edge_counts;
      Hashtbl.replace blocks l nb)
    t.blocks;
  {
    name = t.name;
    guid = t.guid;
    modname = t.modname;
    params = t.params;
    nregs = t.nregs;
    blocks;
    entry = t.entry;
    next_label = t.next_label;
    next_probe = t.next_probe;
    checksum = t.checksum;
    annotated = t.annotated;
    inlined_away = t.inlined_away;
  }

(* Canonical structural digest. Marshaling the whole record would be
   unstable: the blocks table's layout depends on its operation history
   and [Vec]s keep garbage past their length — two structurally equal
   functions built along different paths would hash apart. Instead walk
   the function in sorted label order and hash each field through a
   stable serialization (per-instruction [Marshal] is fine: [Instr.t] is
   a plain immediate-data record). *)
let digest t =
  let acc = Fnv.init in
  let acc = Fnv.string acc t.name in
  let acc = Fnv.int64 acc t.guid in
  let acc = Fnv.string acc t.modname in
  let acc = List.fold_left Fnv.int (Fnv.int acc (List.length t.params)) t.params in
  let acc = Fnv.int acc t.nregs in
  let acc = Fnv.int acc t.entry in
  let acc = Fnv.int acc t.next_label in
  let acc = Fnv.int acc t.next_probe in
  let acc = Fnv.int64 acc t.checksum in
  let acc = Fnv.int acc (if t.annotated then 1 else 0) in
  let acc = Fnv.int acc (if t.inlined_away then 1 else 0) in
  fold_blocks
    (fun acc (b : Block.t) ->
      let acc = Fnv.int acc b.Block.id in
      let acc = Fnv.int64 acc b.Block.count in
      let acc = Array.fold_left Fnv.int64 (Fnv.int acc (Array.length b.Block.edge_counts)) b.Block.edge_counts in
      let acc = Fnv.string acc (Marshal.to_string b.Block.term []) in
      let acc = Fnv.int acc (Vec.length b.Block.instrs) in
      let racc = ref acc in
      Vec.iter
        (fun (i : Instr.t) -> racc := Fnv.string !racc (Marshal.to_string i []))
        b.Block.instrs;
      !racc)
    acc t

let pp fmt t =
  Format.fprintf fmt "fn %s(%a) {  ; guid=%a module=%s@."
    t.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt r -> Format.fprintf fmt "r%d" r))
    t.params Guid.pp t.guid t.modname;
  iter_blocks (fun b -> Block.pp fmt b) t;
  Format.fprintf fmt "}@."
